"""Structured round traces.

A :class:`RoundTrace` subscribes to a network and records, per round, who
received what.  The figure regenerators use it to reconstruct the paper's
construction figures; tests use it to assert locality properties (e.g.
"during the BBST build, messages only travel between path-adjacent
nodes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ncc.message import Message
from repro.ncc.network import Network


@dataclass(frozen=True)
class TracedDelivery:
    """One delivered message, with the round at which it arrived."""

    round_no: int
    src: int
    dst: int
    kind: str
    ids: Tuple[int, ...]
    data: Tuple


class RoundTrace:
    """Records all deliveries on a network from the moment of attachment."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.deliveries: List[TracedDelivery] = []
        net.tracers.append(self._on_round)

    def _on_round(self, round_no: int, inboxes: Dict[int, List[Message]]) -> None:
        for dst, messages in inboxes.items():
            for message in messages:
                self.deliveries.append(
                    TracedDelivery(
                        round_no=round_no,
                        src=message.src,
                        dst=dst,
                        kind=message.kind,
                        ids=message.ids,
                        data=message.data,
                    )
                )

    def detach(self) -> None:
        """Stop recording."""
        if self._on_round in self.net.tracers:
            self.net.tracers.remove(self._on_round)

    def kinds(self) -> Dict[str, int]:
        """Histogram of message kinds seen so far."""
        out: Dict[str, int] = {}
        for delivery in self.deliveries:
            out[delivery.kind] = out.get(delivery.kind, 0) + 1
        return out

    def rounds_used(self) -> int:
        """Number of distinct rounds in which at least one message landed."""
        return len({d.round_no for d in self.deliveries})

    def __len__(self) -> int:
        return len(self.deliveries)
