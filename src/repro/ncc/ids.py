"""Node identifier management.

The paper assumes unique IDs from ``[1, n^c]`` for a fixed constant ``c``.
``IdSpace`` realises that assumption: it assigns IDs (either sequentially,
as is convenient in NCC1 where w.l.o.g. IDs are ``[1, n]``, or as a random
injection into the full space, as befits P2P addresses), and converts
between *indices* (0-based positions in the simulator's bookkeeping) and
*IDs* (what nodes actually see and exchange).

Protocol code must only ever traffic in IDs; indices exist so the simulator
can use arrays internally.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence


class IdSpace:
    """A fixed assignment of unique node IDs.

    Parameters
    ----------
    n:
        Number of nodes.
    exponent:
        IDs live in ``[1, n**exponent]``.
    random_ids:
        Draw a random injection (seeded) instead of ``1..n``.
    seed:
        Seed for the random injection.
    """

    def __init__(
        self,
        n: int,
        *,
        exponent: int = 3,
        random_ids: bool = True,
        seed: int = 0,
    ) -> None:
        if n < 1:
            raise ValueError(f"need at least one node, got n={n}")
        if exponent < 1:
            raise ValueError(f"id space exponent must be >= 1, got {exponent}")
        self.n = n
        self.exponent = exponent
        self.universe = max(n, n**exponent)
        if random_ids and n > 1:
            rng = random.Random(seed)
            ids = rng.sample(range(1, self.universe + 1), n)
        else:
            ids = list(range(1, n + 1))
        self._ids: list[int] = ids
        self._index_of: dict[int, int] = {node_id: i for i, node_id in enumerate(ids)}
        if len(self._index_of) != n:
            raise ValueError("duplicate IDs generated (internal error)")

    @property
    def ids(self) -> Sequence[int]:
        """All node IDs, ordered by simulator index."""
        return tuple(self._ids)

    def id_of(self, index: int) -> int:
        """ID of the node at bookkeeping position ``index`` (0-based)."""
        return self._ids[index]

    def index_of(self, node_id: int) -> int:
        """Bookkeeping position of ``node_id``."""
        try:
            return self._index_of[node_id]
        except KeyError:
            raise KeyError(f"unknown node ID {node_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index_of

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterable[int]:
        return iter(self._ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdSpace(n={self.n}, universe=[1,{self.universe}])"
