"""The Node Capacitated Clique (NCC) model simulator.

This subpackage is the substrate on which every algorithm in the
reproduction runs.  It implements the synchronous message-passing model of
Augustine et al. (SPAA'19) as refined by the paper under reproduction:

* ``n`` nodes with unique IDs drawn from ``[1, n^c]``;
* per round, a node may send and receive at most ``O(log n)`` messages of
  ``O(log n)`` bits each;
* a node may address a message to ``v`` only if it knows ``v``'s ID;
* **NCC0**: initial knowledge is a sparse directed graph (the paper uses a
  directed path ``Gk``); **NCC1**: all IDs are common knowledge.

The simulator *enforces* all four constraints (see
:class:`repro.ncc.network.Network`), so protocols physically cannot cheat,
and it meters rounds / messages / bits so that round-complexity theorems
become measurable quantities.
"""

from repro.ncc.config import EnforcementMode, NCCConfig, Variant
from repro.ncc.engine import ENGINES, FastEngine, ReferenceEngine, make_engine
from repro.ncc.errors import (
    MessageTooLarge,
    NCCError,
    ProtocolError,
    RecvCapExceeded,
    SendCapExceeded,
    UnknownRecipientError,
    UnrealizableError,
)
from repro.ncc.ids import IdSpace
from repro.ncc.knowledge import (
    complete_knowledge,
    cycle_knowledge,
    path_knowledge,
    random_tree_knowledge,
)
from repro.ncc.message import Message
from repro.ncc.metrics import RoundStats
from repro.ncc.network import Network, RoundPlan

__all__ = [
    "ENGINES",
    "EnforcementMode",
    "FastEngine",
    "IdSpace",
    "Message",
    "MessageTooLarge",
    "NCCConfig",
    "NCCError",
    "Network",
    "ProtocolError",
    "RecvCapExceeded",
    "ReferenceEngine",
    "RoundPlan",
    "RoundStats",
    "SendCapExceeded",
    "UnknownRecipientError",
    "UnrealizableError",
    "Variant",
    "complete_knowledge",
    "cycle_knowledge",
    "make_engine",
    "path_knowledge",
    "random_tree_knowledge",
]
