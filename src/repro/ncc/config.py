"""Configuration for NCC simulations.

The paper's model fixes the per-round budgets at ``O(log n)`` messages of
``O(log n)`` bits; the hidden constants are configuration here so benches
can report how measured round counts respond to them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class Variant(enum.Enum):
    """Which initial-knowledge flavour of the NCC model to simulate.

    ``NCC0``
        Each node initially knows only the IDs of its out-neighbours in a
        sparse knowledge graph ``Gk`` (the paper uses a directed path).
        Corresponds to KT0 CONGEST.

    ``NCC1``
        All IDs are common knowledge (the original SPAA'19 NCC model).
        Corresponds to KT1 CONGEST.
    """

    NCC0 = "NCC0"
    NCC1 = "NCC1"


class EnforcementMode(enum.Enum):
    """How the simulator reacts to per-round receive-cap violations.

    ``STRICT``
        Raise :class:`~repro.ncc.errors.RecvCapExceeded`.  Used in tests:
        a correct protocol never overdrives a receiver.

    ``DEFER``
        Queue surplus messages and deliver them in later rounds (FIFO per
        receiver), charging the extra rounds the congestion costs.  This
        models a rate-limited inbox and is useful for adversarial load
        experiments.

    ``UNBOUNDED``
        Do not enforce receive caps (send caps and knowledge gating remain
        enforced).  Only for debugging and ablations.
    """

    STRICT = "strict"
    DEFER = "defer"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class NCCConfig:
    """Immutable parameters of one simulated NCC deployment.

    Parameters
    ----------
    variant:
        :class:`Variant.NCC0` (default, the paper's focus) or ``NCC1``.
    send_cap_factor, recv_cap_factor:
        The per-round caps are ``ceil(factor * log2(n))`` messages, with a
        floor of ``min_cap``.  The paper's ``O(log n)`` budgets.
    min_cap:
        Floor applied to both caps so tiny networks stay functional.
    max_words:
        Message payload budget in machine words; each word is ``O(log n)``
        bits, so a message carries a constant number of IDs/integers.
    word_value_bits_factor:
        A payload integer must fit in ``factor * ceil(log2(n_id_space))``
        bits to count as one word.  Values needing more bits consume
        multiple words (size accounting, see :mod:`repro.ncc.message`).
    enforcement:
        Receive-cap behaviour, see :class:`EnforcementMode`.
    engine:
        Round-execution engine: ``"fast"`` (default — batched delivery
        with memoized size accounting and amortized cap checks),
        ``"reference"`` (the per-message executable specification), or
        ``"sharded"`` (nodes partitioned across worker processes with a
        barrier exchange per round; see :mod:`repro.ncc.sharded`).
        All enforce identical semantics and report bit-identical
        metrics; see :mod:`repro.ncc.engine`.
    engine_shards:
        Worker-process count for ``engine="sharded"`` (must be >= 1;
        clamped to ``n`` per network, since a shard needs at least one
        node; ignored by the in-process engines).
    id_space_exponent:
        IDs are drawn from ``[1, n**id_space_exponent]`` (the paper's
        ``[1, n^c]``).
    random_ids:
        If True, IDs are a random injection into the ID space (realistic
        P2P addressing); if False, IDs are ``1..n`` (convenient for NCC1).
    seed:
        Master seed.  All protocol randomness derives from it, making runs
        reproducible (Las Vegas algorithms with auditable tails).
    """

    variant: Variant = Variant.NCC0
    send_cap_factor: float = 2.0
    recv_cap_factor: float = 2.0
    min_cap: int = 8
    max_words: int = 6
    word_value_bits_factor: float = 2.0
    enforcement: EnforcementMode = EnforcementMode.STRICT
    engine: str = "fast"
    engine_shards: int = 2
    id_space_exponent: int = 3
    random_ids: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        # Catch a nonsensical shard count at configuration time with a
        # clear message, not as a deep worker/partitioner failure once a
        # sharded network starts delivering.  (shards > n is a *per
        # network* condition, validated where n is known: the CLI and
        # RealizationRequest.validate; the engine clamps as a backstop.)
        if (
            not isinstance(self.engine_shards, int)
            or isinstance(self.engine_shards, bool)  # True == 1 must not pass
            or self.engine_shards < 1
        ):
            raise ValueError(
                f"engine_shards must be a positive integer, got "
                f"{self.engine_shards!r}"
            )

    def cap_for(self, n: int) -> tuple[int, int]:
        """Return ``(send_cap, recv_cap)`` for an ``n``-node network."""
        log_n = max(1.0, math.log2(max(2, n)))
        send = max(self.min_cap, math.ceil(self.send_cap_factor * log_n))
        recv = max(self.min_cap, math.ceil(self.recv_cap_factor * log_n))
        return send, recv

    def replace(self, **kwargs) -> "NCCConfig":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace as _replace

        return _replace(self, **kwargs)


#: A convenient default configuration (NCC0, strict enforcement).
DEFAULT_CONFIG = NCCConfig()

#: NCC1 configuration with sequential IDs, as in the SPAA'19 model.
NCC1_CONFIG = NCCConfig(variant=Variant.NCC1, random_ids=False)
