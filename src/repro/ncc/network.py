"""The NCC network: the single chokepoint for all inter-node communication.

Protocol code in this repository is *orchestrated* — a Python scheduler
iterates over nodes and decides, from each node's local memory, what it
sends this round.  Honesty does not rest on that convention: it rests on
:meth:`Network.deliver`, through which every message must pass and which
enforces the model:

1. **Knowledge gating** — a send to an ID the sender does not know raises
   :class:`~repro.ncc.errors.UnknownRecipientError`;
2. **Send caps** — more than ``O(log n)`` sends by one node in one round
   raises :class:`~repro.ncc.errors.SendCapExceeded`;
3. **Receive caps** — more than ``O(log n)`` deliveries to one node in one
   round raises :class:`~repro.ncc.errors.RecvCapExceeded` (strict mode) or
   spills into later rounds (defer mode);
4. **Message size** — payloads above the word budget raise
   :class:`~repro.ncc.errors.MessageTooLarge`.

The network also meters rounds, messages and words so round-complexity
theorems are measurable, and supports *charged* rounds: a validated
primitive may compute its result directly and charge its known round cost
(``fidelity="charged"``), which the metrics report separately.

Round execution is delegated to a pluggable engine
(:mod:`repro.ncc.engine`): ``NCCConfig.engine = "fast"`` (default) runs
the batched fast path, ``"reference"`` the per-message executable spec.
Both enforce identical semantics and report bit-identical metrics.
"""

from __future__ import annotations

import math
import random
import time
from collections import defaultdict, deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ncc.config import DEFAULT_CONFIG, NCCConfig, Variant
from repro.ncc.engine import make_engine
from repro.ncc.errors import DeadlineExceeded, RoundBudgetExceeded
from repro.ncc.ids import IdSpace
from repro.ncc.knowledge import KnowledgeGraph, knowledge_for_variant
from repro.ncc.message import Message
from repro.ncc.metrics import PhaseRecord, RoundStats


class RoundPlan:
    """The set of sends all nodes issue in one synchronous round.

    Two staging modes share the class:

    * **object staging** (the default, and what the scheduler produces):
      ``send()`` appends ``(src, dst, message)`` tuples to ``_sends``;
    * **columnar staging** (:meth:`from_batch`): the round arrives as a
      :class:`~repro.ncc.wire.ColumnarRoundBatch` — recorded replays,
      wire-fed rounds — and ``_sends`` stays ``None`` until something
      needs objects.  The fast engine delivers such a plan straight from
      the columns; reading :attr:`sends` (the reference engine, or any
      per-message consumer) converts the plan to object staging once.
    """

    __slots__ = ("_sends", "_batch")

    def __init__(self) -> None:
        self._sends: Optional[List[Tuple[int, int, Message]]] = []
        self._batch = None

    @classmethod
    def from_batch(cls, batch) -> "RoundPlan":
        """A columnar-staged plan over ``batch`` (no send list built)."""
        plan = cls.__new__(cls)
        plan._sends = None
        plan._batch = batch
        return plan

    def send(self, src: int, dst: int, message: Message) -> None:
        """Schedule ``message`` from ``src`` to ``dst`` for this round."""
        sends = self._sends
        if sends is None:
            sends = self.sends  # converts a columnar-staged plan
        sends.append((src, dst, message))

    def extend(self, other: "RoundPlan") -> None:
        """Merge another plan's sends into this one."""
        self.sends.extend(other.sends)

    @property
    def sends(self) -> List[Tuple[int, int, Message]]:
        """The staged ``(src, dst, message)`` sends in plan order.

        The engines' read surface: the in-process engines iterate it
        directly, and the sharded engine columnarises it per sender
        shard (:mod:`repro.ncc.wire`) at the process boundary.  Plan
        order is the delivery tiebreak everywhere, so the list must not
        be reordered.  On a columnar-staged plan the first read
        materialises the send list and the plan is object-staged from
        then on (the batch is dropped so the two forms cannot diverge).
        """
        sends = self._sends
        if sends is None:
            sends = self._sends = self._batch.to_sends()
            self._batch = None
        return sends

    def __len__(self) -> int:
        sends = self._sends
        return len(sends) if sends is not None else len(self._batch)

    def __bool__(self) -> bool:
        return len(self) > 0


Inboxes = Dict[int, List[Message]]


class Network:
    """A simulated ``n``-node NCC deployment.

    Parameters
    ----------
    n:
        Number of nodes.
    config:
        Model parameters; defaults to strict NCC0.
    knowledge:
        Initial knowledge graph; defaults to the paper's directed path over
        simulator index order (NCC0) or complete knowledge (NCC1).

    Attributes
    ----------
    ids:
        The :class:`~repro.ncc.ids.IdSpace` (ID <-> index mapping).
    mem:
        ``dict[node_id, dict]`` — per-node local memory.  Protocols store
        *all* node state here; nothing else persists between rounds.
    rounds:
        Total rounds elapsed (simulated + charged).
    """

    def __init__(
        self,
        n: int,
        config: NCCConfig = DEFAULT_CONFIG,
        knowledge: Optional[KnowledgeGraph] = None,
    ) -> None:
        self.config = config
        self.ids = IdSpace(
            n,
            exponent=config.id_space_exponent,
            random_ids=config.random_ids,
            seed=config.seed,
        )
        self.n = n
        self.send_cap, self.recv_cap = config.cap_for(n)
        self.word_bits = max(
            8,
            math.ceil(
                config.word_value_bits_factor * math.log2(self.ids.universe + 1)
            ),
        )
        # A custom initial knowledge graph is not captured by (n, config),
        # so such networks must not be pooled (NetworkPool checks this).
        # Only a custom graph needs retaining for reset(); the default
        # Gk is re-derived from (ids, variant), so ordinary networks pay
        # no duplicate O(knowledge) copy at construction.
        self.custom_knowledge = knowledge is not None
        self._initial_known: Optional[Dict[int, frozenset]] = None
        if knowledge is None:
            knowledge = knowledge_for_variant(self.ids.ids, config.variant)
        else:
            self._initial_known = {
                v: frozenset(u for u in knowledge.get(v, ()) if u != v)
                for v in self.ids.ids
            }
        # Knowing yourself is implicit; self-entries are normalised away
        # (the engines rely on dst never appearing in known[dst]).
        self.known: Dict[int, set] = {
            v: {u for u in knowledge.get(v, ()) if u != v} for v in self.ids.ids
        }
        self.mem: Dict[int, Dict[str, Any]] = {v: {} for v in self.ids.ids}
        self.rng = random.Random(config.seed ^ 0x9E3779B9)

        # Metrics.
        self.rounds = 0
        self.simulated_rounds = 0
        self.charged_rounds = 0
        self.messages_delivered = 0
        self.words_delivered = 0
        self.max_round_load = 0
        self._phases: List[PhaseRecord] = []
        self._phase_stack: List[Tuple[str, int, int]] = []
        self.tracers: List[Callable[[int, Inboxes], None]] = []

        # Deferred-delivery queues (EnforcementMode.DEFER).
        self._deferred: Dict[int, deque] = defaultdict(deque)

        # Caller-imposed round ceiling (service multi-tenant isolation);
        # None = unlimited.  Checked in deliver()/charge().
        self.round_budget: Optional[int] = None

        # Caller-imposed wall-clock deadline (absolute, in self.clock()
        # seconds); None = unlimited.  Checked at the same round
        # boundaries as the round budget.  ``clock`` is an attribute so
        # tests can install a fake clock; it survives reset() because it
        # is a construction-level property, not run state.
        self.wall_deadline: Optional[float] = None
        self.clock: Callable[[], float] = time.monotonic

        # Opt-in per-round phase observer (observability layer).  None —
        # the default — keeps the engines' hot paths branch-only flat;
        # when set, engines call it once per delivered round with
        # ``(round_no, phase_seconds, queue_depth, defer_backlog)``.
        # Run state, not construction state: cleared by reset() so pool
        # leases never leak an observer across requests.
        self.round_observer: Optional[
            Callable[[int, Dict[str, float], int, int], None]
        ] = None

        # Round-execution engine (config.engine: "fast" | "reference" |
        # "sharded").  Engines with replicated state expose a note_grant
        # hook so out-of-band knowledge grants reach their replicas.
        self.engine = make_engine(config.engine, self)
        self._grant_hook = getattr(self.engine, "note_grant", None)

    # ------------------------------------------------------------------ #
    # Warm reuse (the service pool's lease API)                          #
    # ------------------------------------------------------------------ #

    def reset(self) -> "Network":
        """Return this network to its pristine post-construction state.

        Restores the initial knowledge graph, empties every node's
        memory, re-seeds the protocol RNG, zeroes all meters, drops
        phases/tracers, clears defer-mode backlogs, and resets the round
        engine.  A workload run after ``reset()`` is bit-identical
        (rounds, messages, :class:`~repro.ncc.metrics.RoundStats`,
        realization result) to the same workload on a freshly constructed
        ``Network`` with the same parameters — the property
        ``tests/test_service_pool.py`` enforces for every engine, and the
        contract :class:`~repro.service.pool.NetworkPool` leases rely on.

        IDs are part of the construction parameters (a seeded injection),
        so they are deliberately retained.  Returns ``self`` so pools can
        ``push(net.reset())``.
        """
        if self._initial_known is not None:  # custom knowledge graph
            self.known = {
                v: set(initial) for v, initial in self._initial_known.items()
            }
        else:
            knowledge = knowledge_for_variant(self.ids.ids, self.config.variant)
            self.known = {
                v: {u for u in knowledge.get(v, ()) if u != v}
                for v in self.ids.ids
            }
        self.mem = {v: {} for v in self.ids.ids}
        self.rng = random.Random(self.config.seed ^ 0x9E3779B9)
        self.rounds = 0
        self.simulated_rounds = 0
        self.charged_rounds = 0
        self.messages_delivered = 0
        self.words_delivered = 0
        self.max_round_load = 0
        self._phases = []
        self._phase_stack = []
        self.tracers = []
        self._deferred = defaultdict(deque)
        self.round_budget = None
        self.wall_deadline = None
        self.round_observer = None
        self.engine.reset()
        return self

    def close(self) -> None:
        """Release engine-held external resources (worker processes).

        A no-op for the in-process engines; the sharded engine stops its
        worker processes.  The network remains usable afterwards —
        sharded workers respawn lazily on the next delivering round.
        """
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------ #
    # Topology / identity helpers                                        #
    # ------------------------------------------------------------------ #

    @property
    def node_ids(self) -> Sequence[int]:
        """All node IDs in simulator index order (== initial path order)."""
        return self.ids.ids

    def __len__(self) -> int:
        return self.n

    def knows(self, u: int, v: int) -> bool:
        """Does ``u`` currently know ``v``'s ID?"""
        return v in self.known[u]

    def grant_knowledge(self, u: int, v: int) -> None:
        """Teach ``u`` the ID ``v`` outside a message exchange.

        Only charged-mode primitives may use this (they account for the
        rounds the knowledge transfer would have cost); protocol code in
        full-fidelity mode must spread knowledge through messages.
        """
        if v != u:
            self.known[u].add(v)
            if self._grant_hook is not None:
                self._grant_hook(u, v)

    # ------------------------------------------------------------------ #
    # The round engine                                                   #
    # ------------------------------------------------------------------ #

    def plan(self) -> RoundPlan:
        """Create an empty plan for the next round."""
        return RoundPlan()

    def deliver(self, plan: RoundPlan) -> Inboxes:
        """Execute one synchronous round.

        Validates every send, applies enforcement, updates knowledge sets,
        advances the round counter, and returns the per-node inboxes.
        Deferred messages from previous rounds (defer mode) are delivered
        first, consuming receive budget.  Execution is delegated to the
        configured engine (:mod:`repro.ncc.engine`); all engines enforce
        the same semantics and meter identically.
        """
        deadline = self.wall_deadline
        if deadline is not None and self.clock() >= deadline:
            raise DeadlineExceeded(self.rounds)
        inboxes = self.engine.deliver(plan)
        budget = self.round_budget
        if budget is not None and self.rounds > budget:
            raise RoundBudgetExceeded(budget, self.rounds)
        return inboxes

    def step(self, sends: Iterable[Tuple[int, int, Message]]) -> Inboxes:
        """Convenience: build a plan from ``(src, dst, msg)`` and deliver."""
        plan = self.plan()
        for src, dst, message in sends:
            plan.send(src, dst, message)
        return self.deliver(plan)

    def idle_round(self) -> None:
        """Advance one round with no sends (synchronisation barrier)."""
        self.deliver(self.plan())

    def pending_deferred(self) -> int:
        """Messages still queued by defer-mode congestion."""
        return sum(len(q) for q in self._deferred.values())

    def drain(self, max_rounds: int = 1_000_000) -> int:
        """Run empty rounds until all deferred messages are delivered."""
        spent = 0
        while self.pending_deferred() and spent < max_rounds:
            self.deliver(self.plan())
            spent += 1
        return spent

    # ------------------------------------------------------------------ #
    # Charged rounds and phases                                          #
    # ------------------------------------------------------------------ #

    def set_round_budget(self, budget: Optional[int]) -> None:
        """Cap total rounds (simulated + charged) for this run.

        Crossing the cap raises
        :class:`~repro.ncc.errors.RoundBudgetExceeded` from the
        offending :meth:`deliver`/:meth:`charge`.  Cleared by
        :meth:`reset`, so pooled leases never inherit a budget.
        """
        if budget is not None and budget < 1:
            raise ValueError(f"round budget must be >= 1, got {budget}")
        self.round_budget = budget

    def set_wall_deadline(self, deadline: Optional[float]) -> None:
        """Cap wall-clock time for this run.

        ``deadline`` is an *absolute* timestamp on this network's
        ``clock`` (:func:`time.monotonic` unless a test substitutes a
        fake).  Crossing it raises
        :class:`~repro.ncc.errors.DeadlineExceeded` from the next
        :meth:`deliver`/:meth:`charge` — cooperative cancellation at
        round boundaries, so a run that finishes in time is bit-identical
        to an undeadlined run.  Cleared by :meth:`reset`, so pooled
        leases never inherit a deadline.
        """
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise ValueError(f"wall deadline must be a timestamp, got {deadline!r}")
        self.wall_deadline = None if deadline is None else float(deadline)

    def set_round_observer(
        self,
        observer: Optional[Callable[[int, Dict[str, float], int, int], None]],
    ) -> None:
        """Install (or clear) the per-round phase observer.

        The engines call ``observer(round_no, phase_seconds,
        queue_depth, defer_backlog)`` once per delivered round:
        ``phase_seconds`` maps phase names (``validate``/``deliver``,
        plus ``exchange`` for the sharded engine and ``fallback`` for
        violation replays) to wall seconds, ``queue_depth`` is the
        round's max inbox load, ``defer_backlog`` the defer-mode queue
        total after the round.  Observers must not mutate network state
        — they see timings, not the simulation.  Cleared by
        :meth:`reset`, so pooled leases never inherit one.
        """
        if observer is not None and not callable(observer):
            raise ValueError(f"round observer must be callable, got {observer!r}")
        self.round_observer = observer

    def charge(self, rounds: int, reason: str = "") -> None:
        """Account ``rounds`` rounds for a charged-mode primitive."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds ({rounds})")
        self.rounds += rounds
        self.charged_rounds += rounds
        budget = self.round_budget
        if budget is not None and self.rounds > budget:
            raise RoundBudgetExceeded(budget, self.rounds)
        deadline = self.wall_deadline
        if deadline is not None and self.clock() >= deadline:
            raise DeadlineExceeded(self.rounds)

    @contextmanager
    def phase(self, label: str):
        """Label a span of rounds; metrics report per-phase breakdowns."""
        self._phase_stack.append((label, self.rounds, self.messages_delivered))
        try:
            yield
        finally:
            start_label, start_rounds, start_msgs = self._phase_stack.pop()
            self._phases.append(
                PhaseRecord(
                    label=start_label,
                    rounds=self.rounds - start_rounds,
                    messages=self.messages_delivered - start_msgs,
                )
            )

    # ------------------------------------------------------------------ #
    # Metrics                                                            #
    # ------------------------------------------------------------------ #

    def engine_stats(self) -> Dict[str, int]:
        """Engine-internal observability counters.

        Lazy-materialisation meters (``messages_materialized`` /
        ``messages_stayed_columnar``, process-wide and monotone — see
        :func:`repro.ncc.wire.materialization_counts`) plus the word
        caches' ``word_cache_evictions``.  Deliberately *not* part of
        :meth:`stats`: :class:`~repro.ncc.metrics.RoundStats` is the
        bit-identical cross-engine surface, and how many objects were
        lazily built is a property of what the *caller* touched, not of
        the simulated round.
        """
        stats = getattr(self.engine, "stats", None)
        return dict(stats()) if stats is not None else {}

    def stats(self) -> RoundStats:
        """Snapshot of all counters (rounds, messages, words, phases)."""
        return RoundStats(
            n=self.n,
            rounds=self.rounds,
            simulated_rounds=self.simulated_rounds,
            charged_rounds=self.charged_rounds,
            messages=self.messages_delivered,
            words=self.words_delivered,
            send_cap=self.send_cap,
            recv_cap=self.recv_cap,
            max_round_load=self.max_round_load,
            phases=tuple(self._phases),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={self.n}, variant={self.config.variant.value}, "
            f"rounds={self.rounds})"
        )
