"""Messages and their size accounting.

An NCC message is ``O(log n)`` bits.  We account size in *words*: one word
is enough bits to hold a node ID or an integer polynomial in ``n``.  A
message consists of

* ``kind`` — a short protocol tag (constant-size header, charged 0 words;
  real implementations would pack it into the header byte);
* ``ids`` — a tuple of node IDs carried by the message.  **This field is
  special**: the simulator adds every ID in it to the receiver's knowledge
  set, which is precisely how knowledge spreads in NCC;
* ``data`` — a tuple of non-ID scalars (ints/floats/bools/short strings).

The total word count of ``ids`` plus ``data`` must stay within
``NCCConfig.max_words``.  Integers much larger than the ID universe consume
multiple words, so a protocol cannot smuggle unbounded state in one
message.
"""

from __future__ import annotations

import itertools
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


def _scalar_words(value: Any, word_bits: int) -> int:
    """Number of words a scalar occupies under a ``word_bits`` word size."""
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, int):
        bits = max(1, value.bit_length())
        return max(1, math.ceil(bits / word_bits))
    if isinstance(value, float):
        return 1  # one machine word (doubles are O(1) words for any log n)
    if isinstance(value, str):
        # Short tags; 8 bits per char.
        return max(1, math.ceil(len(value) * 8 / word_bits))
    raise TypeError(
        f"message payload values must be scalars, got {type(value).__name__}"
    )


def scalar_words_cached(value, word_bits, int_cache, scalar_cache) -> int:
    """Memoized :func:`_scalar_words` dispatch shared by the engines.

    Ints get their own cache (keyed by value, the hot case); other types
    go through a ``(type, value)`` key because equal-comparing scalars of
    different types (``2**60`` vs ``2.0**60``) can occupy different word
    counts.  ``word_bits`` must be fixed for the caches' lifetime.
    :class:`~repro.ncc.engine.FastEngine` additionally inlines this
    dispatch in its hottest loop (see its lockstep comments); the
    sharded engine's workers and :meth:`Message.words` call it directly.

    Unhashable values never reach a cache: they fall through to the
    uncached :func:`_scalar_words`, which raises the canonical
    "payload values must be scalars" ``TypeError`` for non-scalars.
    """
    cls = value.__class__
    if cls is int:
        words = int_cache.get(value)
        if words is None:
            words = _scalar_words(value, word_bits)
            int_cache[value] = words
        return words
    if cls is float or cls is bool or value is None:
        return 1
    key = (cls, value)
    try:
        words = scalar_cache.get(key)
    except TypeError:  # unhashable => not a scalar
        return _scalar_words(value, word_bits)
    if words is None:
        words = _scalar_words(value, word_bits)
        scalar_cache[key] = words
    return words


#: Process-wide word-accounting caches, one ``(int_cache, scalar_cache)``
#: pair per word width.  Pure memoization — a scalar's word count is a
#: function of ``(value, word_bits)`` alone — so every engine, shard
#: worker and :meth:`Message.words` call sharing a width shares the
#: warm entries.
_WORD_CACHES: Dict[int, Tuple[Dict[int, int], Dict[Tuple[type, Any], int]]] = {}

#: Growth bound per cache dict.  Purity makes dropping entries always
#: safe, so a long-lived serve process with endlessly varied payloads
#: stays bounded: :func:`word_caches` evicts the *oldest* entries of any
#: dict that outgrew the bound, down to half of it, and lets the rest
#: re-warm.  Dicts iterate in insertion order, so this is FIFO
#: ("oldest-inserted-out") eviction — an LRU approximation: true
#: recency tracking would put a bookkeeping write on every *read* in the
#: engines' hottest loops, which is exactly what the caches exist to
#: avoid.  Those loops insert through direct references that bypass this
#: function, so their round prologues call ``word_caches`` once per
#: round (``FastEngine`` deliver, ``_ShardState.stage``,
#: ``ColumnarRoundBatch.ensure_words``) to keep the bound enforced there
#: too.  Holders of direct references keep working — they see the same
#: (trimmed) dicts.
_WORD_CACHE_LIMIT = 1 << 20

#: Entries evicted from the word caches, per word width (monotone;
#: surfaced through engine ``stats()`` and the obs registry so cache
#: churn in long-lived serve processes is observable).
_WORD_CACHE_EVICTIONS: Dict[int, int] = {}


def _evict_oldest(cache: dict, word_bits: int) -> None:
    """Drop the oldest-inserted entries down to half the growth bound."""
    drop = len(cache) - (_WORD_CACHE_LIMIT >> 1)
    for key in list(itertools.islice(iter(cache), drop)):
        del cache[key]
    _WORD_CACHE_EVICTIONS[word_bits] = (
        _WORD_CACHE_EVICTIONS.get(word_bits, 0) + drop
    )


def word_cache_evictions(word_bits: Optional[int] = None) -> int:
    """Evicted word-cache entries for ``word_bits`` (or all widths)."""
    if word_bits is not None:
        return _WORD_CACHE_EVICTIONS.get(word_bits, 0)
    return sum(_WORD_CACHE_EVICTIONS.values())


def word_caches(word_bits: int) -> Tuple[Dict[int, int], Dict[Tuple[type, Any], int]]:
    """The shared ``(int_cache, scalar_cache)`` pair for ``word_bits``."""
    caches = _WORD_CACHES.get(word_bits)
    if caches is None:
        caches = _WORD_CACHES[word_bits] = ({}, {})
        return caches
    int_cache, scalar_cache = caches
    if len(int_cache) > _WORD_CACHE_LIMIT:
        _evict_oldest(int_cache, word_bits)
    if len(scalar_cache) > _WORD_CACHE_LIMIT:
        _evict_oldest(scalar_cache, word_bits)
    return caches


@dataclass(frozen=True)
class Message:
    """One NCC message.

    Attributes
    ----------
    kind:
        Protocol tag, e.g. ``"invite"`` or ``"agg"``.
    ids:
        Node IDs carried in the payload; receivers learn these.
    data:
        Non-ID scalar payload.
    src:
        Filled in by the network at delivery time: the sender's ID.  The
        receiver learns it (receiving a message always reveals the sender).
    """

    kind: str
    ids: Tuple[int, ...] = ()
    data: Tuple[Any, ...] = ()
    src: int = -1

    def words(self, word_bits: int) -> int:
        """Size of this message in words for the given word width.

        Delegates to the shared :func:`scalar_words_cached` path (one
        cache pair per word width via :func:`word_caches`) instead of
        re-running the uncached computation per call: the reference
        engine asks twice per message and defer-mode backlogs ask again
        per requeue, so repeated queries must be dict lookups.
        """
        total = len(self.ids)
        data = self.data
        if data:
            int_cache, scalar_cache = word_caches(word_bits)
            for value in data:
                total += scalar_words_cached(
                    value, word_bits, int_cache, scalar_cache
                )
        return total

    def with_src(self, src: int) -> "Message":
        """Copy of this message stamped with its sender (delivery step)."""
        return Message(kind=self.kind, ids=self.ids, data=self.data, src=src)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.kind!r}, ids={self.ids}, data={self.data}, src={self.src})"


def msg(kind: str, *, ids: Tuple[int, ...] = (), data: Tuple[Any, ...] = ()) -> Message:
    """Terse constructor used throughout protocol code.

    The header is interned: protocol namespaces re-create the same
    ``"<ns>:<tag>"`` strings at every round, and interning collapses them
    to one shared object (kind comparisons then usually short-circuit on
    identity).

    Construction fills the instance dict directly instead of going
    through the frozen-dataclass ``__init__``/``__setattr__`` machinery —
    protocols build one message per send, which makes this the hottest
    allocation site of a full-fidelity run.  The result is
    indistinguishable from ``Message(...)`` (same fields, same equality
    and hashing).

    The densest send loops (``primitives/bbst.py`` and
    ``primitives/traversal.py``) inline this dict-fill to skip even the
    call overhead — when the field layout changes, keep those copies in
    lockstep.
    """
    stamped = Message.__new__(Message)
    inner = stamped.__dict__
    inner["kind"] = sys.intern(kind)
    inner["ids"] = ids if ids.__class__ is tuple else tuple(ids)
    inner["data"] = data if data.__class__ is tuple else tuple(data)
    inner["src"] = -1
    return stamped
