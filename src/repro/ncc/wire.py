"""Columnar wire codec for cross-process message transport.

The NCC model charges every message as ``O(log n)``-bit words, but the
multiprocess layers were shipping each one as a pickled ``Message``
object: per-object class dispatch, memo-table traffic and a fresh
instance rebuild through the pickle machinery on the far side.  PR 4's
profile showed that pickling tax dwarfing the validation work the shards
parallelise.  This module replaces the per-object encoding with a
*columnar* (struct-of-arrays) one — a batch of messages travels as one
column per field:

* an interned **kind table** (each distinct protocol tag once per batch)
  plus a per-message index column — decoding re-interns the table once,
  so every decoded message satisfies the ``msg()`` interning invariant
  the engines rely on, which the pickle path had to repair by hand after
  every exchange;
* a **src column** and three ``int64`` **meta columns** for the entry
  shapes (plan index / sender / receiver / word count, depending on the
  path);
* ragged **id and data columns**: one small tuple per message, pickled
  natively (ints of any width, floats, bools, ``None`` and short strings
  are all primitive pickle types, so payload *types* round-trip exactly
  with no per-slot tagging).

``multiprocessing`` still pickles the blob, but a column set is a
handful of flat containers instead of a per-message object walk, and
decoding rebuilds each message with a plain dict fill (no pickle
protocol, no ``__init__``).  Decode materialises one independent
``Message`` per entry: object *aliasing* across entries is not
preserved (pickle's memo table preserved it), which is outside the plan
contract anyway — a message submitted to a plan is engine-owned and
protocols build one fresh ``msg()`` per send — and on such
contract-violating plans the decoded behaviour matches the reference
engine (per-send ``src``), not the fast engine's in-place stamping.

**Measured, not assumed.**  A flat ``array('q')``-with-offsets layout
for the id/data columns (plus a tagged scalar column for non-int
payloads) was prototyped first and *lost* to this ragged layout at real
batch sizes — cross-shard rounds average tens of messages, where the
per-batch array construction and the per-element boxing that decode
pays anyway (``Message`` fields are tuples of Python ints) outweigh the
memcpy pickling of a dense column.  Dense ``array('q')`` columns are
kept where they do win: the id-group shape below, whose knowledge
resyncs ship thousands of bare ints that feed ``set()`` without ever
materialising tuples.  ``benchmarks/bench_multiprocess.py`` races the
shipped codec against per-object pickle on captured round batches and
records the ratio (``transport_codec.speedup_vs_pickle``).

Three shapes cover every process boundary in the repository:

* **entry batches** (:func:`encode_entries` / :func:`decode_entries`):
  three int meta columns + message columns, for the sharded engine's
  routed sends ``(plan_idx, src, dst, message)`` and staged relays
  ``(plan_idx, dst, words, message)``.  The receiver meta column of a
  staged-relay blob is readable without decoding
  (:func:`entry_receivers`) — the parent's strict-mode arrival count
  never materialises a message.
* **grouped messages** (:func:`encode_grouped` / :func:`decode_grouped`):
  ``(key, [messages])`` groups, for returned inboxes, defer-mode spills
  and backlog resyncs.
* **id groups** (:func:`encode_id_groups` / :func:`decode_id_groups`):
  ``(key, ids)`` groups as dense ``array('q')`` columns with offsets,
  for knowledge gains and replica resyncs; a group whose
  protocol-supplied ids exceed ``int64`` (or are not ints at all —
  knowledge sets accept any hashable) falls back to a boxed side
  table, so exotic payload ids transport exactly like the in-process
  engines accept them.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, List, Tuple

from repro.ncc.message import Message

#: The empty message-column set (shared; decode short-circuits on it).
_EMPTY_COLS = ((), (), (), (), ())


def _encode_messages(messages) -> tuple:
    """The shared message columns of every wire shape.

    ``dict.setdefault`` with ``len(kind_of)`` as the default builds the
    interned-kind index in one comprehension: the first occurrence of a
    kind claims the next table slot, repeats reuse it.
    """
    if not messages:
        return _EMPTY_COLS
    kind_of: dict = {}
    setdefault = kind_of.setdefault
    kind_idx = [setdefault(m.kind, len(kind_of)) for m in messages]
    return (
        tuple(kind_of),  # the kind table, in first-occurrence order
        kind_idx,
        [m.src for m in messages],
        [m.ids for m in messages],
        [m.data for m in messages],
    )


def _decode_messages(cols: tuple) -> List[Message]:
    """Rebuild the message objects of one column set.

    Kinds are re-interned here (once per table entry, not per message);
    each message is a ``Message.__new__`` plus a plain dict fill — the
    frozen-dataclass ``__init__``/``__setattr__`` machinery and the
    pickle object protocol are both skipped.
    """
    kinds, kind_idx, srcs, ids_list, data_list = cols
    if not kind_idx:
        return []
    table = [sys.intern(kind) for kind in kinds]
    new = Message.__new__
    messages: List[Message] = []
    append = messages.append
    for ki, src, ids, data in zip(kind_idx, srcs, ids_list, data_list):
        message = new(Message)
        inner = message.__dict__  # frozen dataclass: fill, don't setattr
        inner["kind"] = table[ki]
        inner["ids"] = ids
        inner["data"] = data
        inner["src"] = src
        append(message)
    return messages


# ---------------------------------------------------------------------- #
# Entry batches: three int meta columns + message columns                #
# ---------------------------------------------------------------------- #


def encode_entries(entries: Iterable[Tuple[int, int, int, Message]]) -> tuple:
    """Encode ``(a, b, c, message)`` entries column-wise.

    The meta columns are layout-agnostic ints; the sharded engine uses
    ``(plan_idx, src, dst, ·)`` for routed sends and
    ``(plan_idx, dst, words, ·)`` for staged relays.
    """
    if not isinstance(entries, (list, tuple)):
        entries = list(entries)
    if not entries:
        return ((), (), (), _EMPTY_COLS)
    col_a, col_b, col_c, messages = zip(*entries)
    return (col_a, col_b, col_c, _encode_messages(messages))


def decode_entries(blob: tuple) -> List[Tuple[int, int, int, Message]]:
    """Rebuild the ``(a, b, c, message)`` entry tuples of one blob."""
    col_a, col_b, col_c, cols = blob
    return list(zip(col_a, col_b, col_c, _decode_messages(cols)))


def entry_count(blob: tuple) -> int:
    """Number of entries in a blob, without decoding it."""
    return len(blob[0])


def entry_receivers(blob: tuple) -> tuple:
    """The ``b`` meta column — the receiver IDs of a staged-relay blob.

    Readable without materialising a single message: the sharded
    parent's strict-mode arrival count iterates this raw column.
    """
    return blob[1]


# ---------------------------------------------------------------------- #
# Grouped messages: (key, [messages]) groups                             #
# ---------------------------------------------------------------------- #


def encode_grouped(groups: Iterable[Tuple[int, Iterable[Message]]]) -> tuple:
    """Encode ``(key, messages)`` groups (inboxes, spills, backlogs)."""
    keys: List[int] = []
    key_append = keys.append
    offsets: List[int] = [0]
    offset_append = offsets.append
    messages: List[Message] = []
    extend = messages.extend
    for key, group in groups:
        key_append(key)
        extend(group)
        offset_append(len(messages))
    return (keys, offsets, _encode_messages(messages))


def decode_grouped(blob: tuple) -> List[Tuple[int, List[Message]]]:
    """Rebuild ``(key, [messages])`` groups in their encoded order."""
    keys, offsets, cols = blob
    messages = _decode_messages(cols)
    return [
        (key, messages[offsets[i] : offsets[i + 1]])
        for i, key in enumerate(keys)
    ]


# ---------------------------------------------------------------------- #
# Id groups: (key, ids) groups as dense int64 columns                    #
# ---------------------------------------------------------------------- #


def encode_id_groups(groups: Iterable[Tuple[int, Iterable[int]]]) -> tuple:
    """Encode ``(key, ids)`` groups (knowledge gains, replica resyncs).

    Dense ``array('q')`` columns with offsets: a knowledge resync ships
    thousands of bare ints that the receiver pours straight into
    ``set()``, so here the memcpy pickling of a flat array wins.  Keys
    are simulator node IDs (bounded by the ID universe), but the *ids*
    are protocol-supplied — ``Message.ids`` payloads are not bounded by
    the universe, and a receiver legitimately "learns" whatever they
    carry — so a group whose ids overflow ``int64`` falls back to a
    boxed side table instead of crashing the exchange (the in-process
    engines accept such ids, and the sharded engine must stay
    bit-identical to them).
    """
    keys = array("q")
    key_append = keys.append
    offsets = array("q", (0,))
    offset_append = offsets.append
    flat = array("q")
    extend = flat.extend
    oversize = None  # group index -> (key, tuple(ids)); the boxed fallback
    for key, ids in groups:
        # The fallbacks below re-iterate ids (purity check, boxed
        # tuple); a one-shot iterator would silently encode empty, so
        # materialise anything that isn't a re-iterable container.
        if type(ids) not in (tuple, list, set, frozenset):
            ids = tuple(ids)
        try:
            key_append(key)
        except (OverflowError, TypeError):
            # Keys are node IDs from [1, n^c], but n^c outgrows int64
            # for n beyond ~2 million at the default exponent: box the
            # whole group (a 0 placeholder keeps the columns aligned).
            key_append(0)
            if oversize is None:
                oversize = {}
            oversize[len(keys) - 1] = (key, tuple(ids))
            offset_append(len(flat))
            continue
        try:
            extend(ids)
        except (OverflowError, TypeError):
            # Beyond int64, or not an int at all (the in-process
            # engines accept any hashable id — knowledge is a plain
            # set): box the group instead of crashing the exchange.
            del flat[offsets[-1] :]  # drop the partial extend
            if oversize is None:
                oversize = {}
            oversize[len(keys) - 1] = (key, tuple(ids))
        else:
            # array('q') silently coerces int *subclasses* (bool,
            # IntEnum) to plain ints; exact types must survive the
            # boundary, so such groups take the box too.  map/set keep
            # the purity check at C speed.
            if ids and set(map(type, ids)) != {int}:
                del flat[offsets[-1] :]
                if oversize is None:
                    oversize = {}
                oversize[len(keys) - 1] = (key, tuple(ids))
        offset_append(len(flat))
    return (keys, offsets, flat, oversize)


def decode_id_groups(blob: tuple) -> List[Tuple[int, Iterable[int]]]:
    """Rebuild ``(key, ids)`` groups; ids come back as ``array('q')``
    slices (iterable of ints — feed them to ``set.update`` / ``set()``
    directly), or as the original tuples for boxed oversize groups."""
    keys, offsets, flat, oversize = blob
    out = [
        (key, flat[offsets[i] : offsets[i + 1]]) for i, key in enumerate(keys)
    ]
    if oversize:
        for i, boxed in oversize.items():
            out[i] = boxed
    return out


# --------------------------------------------------------------------- #
# Observability trailers                                                #
# --------------------------------------------------------------------- #
#
# A fourth shape rides the request/response envelopes of
# ``repro.service.api``: one *optional* trailing element past the fixed
# ``_WIRE_KEYS`` width.  Outbound it carries the compact trace context
# ``(trace_id, parent_span_id)``; inbound it carries the worker's span
# tree flattened into columns (``repro.obs.trace.encode_span_columns``
# — same struct-of-arrays idea as the message columns above).  Peers
# that predate tracing — or requests with tracing disabled — simply
# ship the bare tuple; ``wire_body`` makes decoding agnostic.


def attach_trailer(wire: tuple, trailer) -> tuple:
    """Append one observability trailer element to a wire envelope."""
    return wire + (trailer,)


# --------------------------------------------------------------------- #
# Record integrity (CRC-32C)                                            #
# --------------------------------------------------------------------- #
# The request journal frames each on-disk record with a CRC-32C
# (Castagnoli, the iSCSI/ext4 polynomial — materially better error
# detection than CRC-32/ISO-HDLC for short records).  The stdlib only
# ships the zlib polynomial, so the table-driven form lives here next to
# the envelope helpers: journal records *are* wire envelopes, and the
# checksum is part of their framing contract.

_CRC32C_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def _crc32c_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _crc32c_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C of ``data`` (chainable via ``crc`` for streaming use)."""
    crc ^= 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def wire_body(wire: tuple, width: int) -> tuple:
    """The fixed-width envelope, with any trailer sliced off."""
    return wire[:width] if len(wire) > width else wire


def wire_trailer(wire: tuple, width: int):
    """The trailer element, or ``None`` when the envelope is bare."""
    return wire[width] if len(wire) > width else None
