"""Columnar wire codec for cross-process message transport.

The NCC model charges every message as ``O(log n)``-bit words, but the
multiprocess layers were shipping each one as a pickled ``Message``
object: per-object class dispatch, memo-table traffic and a fresh
instance rebuild through the pickle machinery on the far side.  PR 4's
profile showed that pickling tax dwarfing the validation work the shards
parallelise.  This module replaces the per-object encoding with a
*columnar* (struct-of-arrays) one — a batch of messages travels as one
column per field:

* an interned **kind table** (each distinct protocol tag once per batch)
  plus a per-message index column — decoding re-interns the table once,
  so every decoded message satisfies the ``msg()`` interning invariant
  the engines rely on, which the pickle path had to repair by hand after
  every exchange;
* a **src column** and three ``int64`` **meta columns** for the entry
  shapes (plan index / sender / receiver / word count, depending on the
  path);
* ragged **id and data columns**: one small tuple per message, pickled
  natively (ints of any width, floats, bools, ``None`` and short strings
  are all primitive pickle types, so payload *types* round-trip exactly
  with no per-slot tagging).

``multiprocessing`` still pickles the blob, but a column set is a
handful of flat containers instead of a per-message object walk, and
decoding rebuilds each message with a plain dict fill (no pickle
protocol, no ``__init__``).  Decode materialises one independent
``Message`` per entry: object *aliasing* across entries is not
preserved (pickle's memo table preserved it), which is outside the plan
contract anyway — a message submitted to a plan is engine-owned and
protocols build one fresh ``msg()`` per send — and on such
contract-violating plans the decoded behaviour matches the reference
engine (per-send ``src``), not the fast engine's in-place stamping.

**Measured, not assumed.**  A flat ``array('q')``-with-offsets layout
for the id/data columns (plus a tagged scalar column for non-int
payloads) was prototyped first and *lost* to this ragged layout at real
batch sizes — cross-shard rounds average tens of messages, where the
per-batch array construction and the per-element boxing that decode
pays anyway (``Message`` fields are tuples of Python ints) outweigh the
memcpy pickling of a dense column.  Dense ``array('q')`` columns are
kept where they do win: the id-group shape below, whose knowledge
resyncs ship thousands of bare ints that feed ``set()`` without ever
materialising tuples.  ``benchmarks/bench_multiprocess.py`` races the
shipped codec against per-object pickle on captured round batches and
records the ratio (``transport_codec.speedup_vs_pickle``).

Since PR 10 the columnar batch is also the engines' *native in-memory*
round representation (:class:`ColumnarRoundBatch` / :class:`ColumnarInbox`
below): violation-free rounds validate, meter and deliver as column
passes, and ``Message`` objects are materialised lazily only when
protocol code touches an inbox entry.  The wire shapes and the in-memory
batch share columns, so crossing a process boundary is a densify/un-box
pass, not a decode/re-encode.

Three grouped shapes cover the remaining process boundaries:

* **entry batches** (:func:`encode_entries` / :func:`decode_entries`):
  three int meta columns + message columns, for the sharded engine's
  routed sends ``(plan_idx, src, dst, message)`` and staged relays
  ``(plan_idx, dst, words, message)``.  The receiver meta column of a
  staged-relay blob is readable without decoding
  (:func:`entry_receivers`) — the parent's strict-mode arrival count
  never materialises a message.
* **grouped messages** (:func:`encode_grouped` / :func:`decode_grouped`):
  ``(key, [messages])`` groups, for returned inboxes, defer-mode spills
  and backlog resyncs.
* **id groups** (:func:`encode_id_groups` / :func:`decode_id_groups`):
  ``(key, ids)`` groups as dense ``array('q')`` columns with offsets,
  for knowledge gains and replica resyncs; a group whose
  protocol-supplied ids exceed ``int64`` (or are not ints at all —
  knowledge sets accept any hashable) falls back to a boxed side
  table, so exotic payload ids transport exactly like the in-process
  engines accept them.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ncc.message import Message, _scalar_words, word_caches

#: The empty message-column set (shared; decode short-circuits on it).
_EMPTY_COLS = ((), (), (), (), ())


def _int_column(values):
    """``values`` as a dense ``array('q')``, or the list itself when the
    dense form would lie.

    Dense columns win on the wire (memcpy pickling), but ``array('q')``
    overflows past ``int64`` and silently coerces exact int *subclasses*
    (``bool``, ``IntEnum``) to plain ints — and exact types must survive
    the boundary (same idiom as :func:`encode_id_groups`).  Such columns
    fall back to the plain list, which pickles element-wise but stays
    bit-exact.
    """
    if not values:
        return ()
    try:
        col = array("q", values)
    except (OverflowError, TypeError):
        return list(values)
    # map/set keep the exact-type purity check at C speed.
    if set(map(type, values)) != {int}:
        return list(values)
    return col


def _encode_messages(messages) -> tuple:
    """The shared message columns of every wire shape.

    ``dict.setdefault`` with ``len(kind_of)`` as the default builds the
    interned-kind index in one comprehension: the first occurrence of a
    kind claims the next table slot, repeats reuse it.
    """
    if not messages:
        return _EMPTY_COLS
    kind_of: dict = {}
    setdefault = kind_of.setdefault
    kind_idx = [setdefault(m.kind, len(kind_of)) for m in messages]
    return (
        tuple(kind_of),  # the kind table, in first-occurrence order
        kind_idx,
        [m.src for m in messages],
        [m.ids for m in messages],
        [m.data for m in messages],
    )


def _decode_messages(cols: tuple) -> List[Message]:
    """Rebuild the message objects of one column set.

    Kinds are re-interned here (once per table entry, not per message);
    each message is a ``Message.__new__`` plus a plain dict fill — the
    frozen-dataclass ``__init__``/``__setattr__`` machinery and the
    pickle object protocol are both skipped.
    """
    kinds, kind_idx, srcs, ids_list, data_list = cols
    if not kind_idx:
        return []
    table = [sys.intern(kind) for kind in kinds]
    new = Message.__new__
    messages: List[Message] = []
    append = messages.append
    for ki, src, ids, data in zip(kind_idx, srcs, ids_list, data_list):
        message = new(Message)
        inner = message.__dict__  # frozen dataclass: fill, don't setattr
        inner["kind"] = table[ki]
        inner["ids"] = ids
        inner["data"] = data
        inner["src"] = src
        append(message)
    return messages


# ---------------------------------------------------------------------- #
# Entry batches: three int meta columns + message columns                #
# ---------------------------------------------------------------------- #


def encode_entries(entries: Iterable[Tuple[int, int, int, Message]]) -> tuple:
    """Encode ``(a, b, c, message)`` entries column-wise.

    The meta columns are layout-agnostic ints; the sharded engine uses
    ``(plan_idx, src, dst, ·)`` for routed sends and
    ``(plan_idx, dst, words, ·)`` for staged relays.
    """
    if not isinstance(entries, (list, tuple)):
        entries = list(entries)
    if not entries:
        return ((), (), (), _EMPTY_COLS)
    col_a, col_b, col_c, messages = zip(*entries)
    return (col_a, col_b, col_c, _encode_messages(messages))


def decode_entries(blob: tuple) -> List[Tuple[int, int, int, Message]]:
    """Rebuild the ``(a, b, c, message)`` entry tuples of one blob."""
    col_a, col_b, col_c, cols = blob
    return list(zip(col_a, col_b, col_c, _decode_messages(cols)))


def entry_count(blob: tuple) -> int:
    """Number of entries in a blob, without decoding it."""
    return len(blob[0])


def entry_receivers(blob: tuple) -> tuple:
    """The ``b`` meta column — the receiver IDs of a staged-relay blob.

    Readable without materialising a single message: the sharded
    parent's strict-mode arrival count iterates this raw column.
    """
    return blob[1]


# ---------------------------------------------------------------------- #
# Grouped messages: (key, [messages]) groups                             #
# ---------------------------------------------------------------------- #


def encode_grouped(groups: Iterable[Tuple[int, Iterable[Message]]]) -> tuple:
    """Encode ``(key, messages)`` groups (inboxes, spills, backlogs)."""
    keys: List[int] = []
    key_append = keys.append
    offsets: List[int] = [0]
    offset_append = offsets.append
    messages: List[Message] = []
    extend = messages.extend
    for key, group in groups:
        key_append(key)
        extend(group)
        offset_append(len(messages))
    return (keys, offsets, _encode_messages(messages))


def decode_grouped(blob: tuple) -> List[Tuple[int, List[Message]]]:
    """Rebuild ``(key, [messages])`` groups in their encoded order."""
    keys, offsets, cols = blob
    messages = _decode_messages(cols)
    return [
        (key, messages[offsets[i] : offsets[i + 1]])
        for i, key in enumerate(keys)
    ]


# ---------------------------------------------------------------------- #
# Id groups: (key, ids) groups as dense int64 columns                    #
# ---------------------------------------------------------------------- #


def encode_id_groups(groups: Iterable[Tuple[int, Iterable[int]]]) -> tuple:
    """Encode ``(key, ids)`` groups (knowledge gains, replica resyncs).

    Dense ``array('q')`` columns with offsets: a knowledge resync ships
    thousands of bare ints that the receiver pours straight into
    ``set()``, so here the memcpy pickling of a flat array wins.  Keys
    are simulator node IDs (bounded by the ID universe), but the *ids*
    are protocol-supplied — ``Message.ids`` payloads are not bounded by
    the universe, and a receiver legitimately "learns" whatever they
    carry — so a group whose ids overflow ``int64`` falls back to a
    boxed side table instead of crashing the exchange (the in-process
    engines accept such ids, and the sharded engine must stay
    bit-identical to them).
    """
    keys = array("q")
    key_append = keys.append
    offsets = array("q", (0,))
    offset_append = offsets.append
    flat = array("q")
    extend = flat.extend
    oversize = None  # group index -> (key, tuple(ids)); the boxed fallback
    for key, ids in groups:
        # The fallbacks below re-iterate ids (purity check, boxed
        # tuple); a one-shot iterator would silently encode empty, so
        # materialise anything that isn't a re-iterable container.
        if type(ids) not in (tuple, list, set, frozenset):
            ids = tuple(ids)
        try:
            key_append(key)
        except (OverflowError, TypeError):
            # Keys are node IDs from [1, n^c], but n^c outgrows int64
            # for n beyond ~2 million at the default exponent: box the
            # whole group (a 0 placeholder keeps the columns aligned).
            key_append(0)
            if oversize is None:
                oversize = {}
            oversize[len(keys) - 1] = (key, tuple(ids))
            offset_append(len(flat))
            continue
        try:
            extend(ids)
        except (OverflowError, TypeError):
            # Beyond int64, or not an int at all (the in-process
            # engines accept any hashable id — knowledge is a plain
            # set): box the group instead of crashing the exchange.
            del flat[offsets[-1] :]  # drop the partial extend
            if oversize is None:
                oversize = {}
            oversize[len(keys) - 1] = (key, tuple(ids))
        else:
            # array('q') silently coerces int *subclasses* (bool,
            # IntEnum) to plain ints; exact types must survive the
            # boundary, so such groups take the box too.  map/set keep
            # the purity check at C speed.
            if ids and set(map(type, ids)) != {int}:
                del flat[offsets[-1] :]
                if oversize is None:
                    oversize = {}
                oversize[len(keys) - 1] = (key, tuple(ids))
        offset_append(len(flat))
    return (keys, offsets, flat, oversize)


def decode_id_groups(blob: tuple) -> List[Tuple[int, Iterable[int]]]:
    """Rebuild ``(key, ids)`` groups; ids come back as ``array('q')``
    slices (iterable of ints — feed them to ``set.update`` / ``set()``
    directly), or as the original tuples for boxed oversize groups."""
    keys, offsets, flat, oversize = blob
    out = [
        (key, flat[offsets[i] : offsets[i + 1]]) for i, key in enumerate(keys)
    ]
    if oversize:
        for i, boxed in oversize.items():
            out[i] = boxed
    return out


# ---------------------------------------------------------------------- #
# The engine-native columnar round batch                                 #
# ---------------------------------------------------------------------- #
#
# PR 5 proved the struct-of-arrays layout wins on the wire; the batch
# below promotes it to the engines' *in-memory* round representation.  A
# violation-free round never needs a ``Message`` object: the fast
# engine's cap checks are counting passes over the src/receiver columns,
# word accounting runs over the payload columns, and inboxes are served
# as column slices (:class:`ColumnarInbox`) that materialise ``Message``
# objects lazily, only when protocol code actually touches one.  The
# sharded engine stages, relays and merges these columns end to end —
# its workers never construct a message at all.
#
# **In memory: lists.  On the wire: arrays.**  ``array('q')`` iteration
# boxes a fresh int per element, so the engines' hottest loops iterate
# plain lists (ints boxed once at build); :meth:`ColumnarRoundBatch.
# to_wire` densifies the int columns (``_int_column``) at the process
# boundary, where the memcpy pickling is the win, and ``from_wire``
# un-boxes them back to lists in one C pass.

#: Process-wide lazy-materialisation meters (monotone, like the word
#: caches: every engine in the process shares them).
#:
#: * ``materialized`` — ``Message`` objects built from columns (lazy
#:   inbox touches, defer-mode spills, reference-replay conversions);
#: * ``inbox_materialized`` — the subset built because an inbox slice
#:   was actually touched by protocol/test code;
#: * ``delivered_columnar`` — entries delivered as column slices with
#:   no pre-existing object (field-mode batches).
_COLUMNAR_COUNTS: Dict[str, int] = {
    "materialized": 0,
    "inbox_materialized": 0,
    "delivered_columnar": 0,
}


def note_delivered_columnar(count: int) -> None:
    """Meter ``count`` entries delivered as column slices (no objects)."""
    _COLUMNAR_COUNTS["delivered_columnar"] += count


def materialized_total() -> int:
    """Messages materialised from columns so far, process-wide."""
    return _COLUMNAR_COUNTS["materialized"]


def materialization_counts() -> Dict[str, int]:
    """The lazy-materialisation scoreboard (process-wide, monotone).

    ``messages_materialized`` counts every ``Message`` built from
    columns; ``messages_stayed_columnar`` counts entries delivered as
    column slices whose inbox was never touched — the objects the lazy
    representation never had to build.
    """
    counts = _COLUMNAR_COUNTS
    return {
        "messages_materialized": counts["materialized"],
        "messages_stayed_columnar": (
            counts["delivered_columnar"] - counts["inbox_materialized"]
        ),
    }


class ColumnarRoundBatch:
    """One round's sends as columns — the engines' native representation.

    Two modes share the layout:

    * **object mode** (``kinds is None``): built from an existing
      ``(src, dst, message)`` send list (:meth:`from_sends`); the
      original objects ride in ``messages`` and ``materialize`` hands
      them back (stamping ``src`` in place, the fast engine's
      delivery-time contract).
    * **field mode** (``kinds`` is the interned kind table): no objects
      exist; ``materialize`` builds one on first touch via the same
      ``Message.__new__`` + dict fill as :func:`_decode_messages`, so
      the ``msg()`` kind-identity invariant holds by construction.

    ``words`` is filled by :meth:`ensure_words` (one pass over the
    payload columns, memoized through the shared word caches) and rides
    the wire with the batch, so a relayed column is never re-sized.
    """

    __slots__ = (
        "kinds",
        "kind_idx",
        "srcs",
        "dsts",
        "ids",
        "data",
        "words",
        "words_ok",
        "messages",
        "_built",
        "_kind_slot",
    )

    def __init__(
        self, kinds, kind_idx, srcs, dsts, ids, data, words=None, messages=None
    ) -> None:
        self.kinds = kinds
        self.kind_idx = kind_idx
        self.srcs = srcs
        self.dsts = dsts
        self.ids = ids
        self.data = data
        self.words = words
        self.words_ok = True
        self.messages = messages
        self._built: Optional[list] = None
        self._kind_slot: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.srcs)

    # -- construction ------------------------------------------------ #

    @classmethod
    def from_sends(cls, sends, keep_messages: bool = True) -> "ColumnarRoundBatch":
        """Columnarise an ``(src, dst, message)`` send list.

        ``keep_messages=True`` (object mode) keeps the originals so
        materialisation is free; ``False`` builds a field-mode batch —
        the shape a batch has after crossing a process boundary — for
        replay benchmarks and tests that exercise lazy materialisation.
        """
        srcs = [s for s, _, _ in sends]
        dsts = [d for _, d, _ in sends]
        ids = [m.ids for _, _, m in sends]
        data = [m.data for _, _, m in sends]
        if keep_messages:
            return cls(None, None, srcs, dsts, ids, data,
                       messages=[m for _, _, m in sends])
        kind_of: dict = {}
        setdefault = kind_of.setdefault
        kind_idx = [setdefault(m.kind, len(kind_of)) for _, _, m in sends]
        return cls(tuple(kind_of), kind_idx, srcs, dsts, ids, data)

    @classmethod
    def builder(cls) -> "ColumnarRoundBatch":
        """An empty field-mode batch for incremental column appends
        (the sharded workers' merge path).  ``dsts`` stays empty — a
        result batch is keyed by its grouping, not a receiver column."""
        batch = cls([], [], [], [], [], [], words=[])
        batch._kind_slot = {}
        return batch

    def append_fields(self, kind, ids, data, src, word) -> None:
        """Append one entry by fields (no ``Message`` construction)."""
        slot = self._kind_slot
        ki = slot.get(kind)
        if ki is None:
            ki = slot[kind] = len(slot)
            self.kinds.append(kind)  # keep the live table materialisable
        self.kind_idx.append(ki)
        self.srcs.append(src)
        self.ids.append(ids)
        self.data.append(data)
        self.words.append(word)

    def append_from(self, other: "ColumnarRoundBatch", j: int) -> None:
        """Append ``other``'s entry ``j`` by copying column cells."""
        self.append_fields(
            other.kinds[other.kind_idx[j]],
            other.ids[j],
            other.data[j],
            other.srcs[j],
            other.words[j],
        )

    def gather(self, indices) -> "ColumnarRoundBatch":
        """A field-mode sub-batch of ``indices`` (shares the kind table)."""
        ki = self.kind_idx
        srcs = self.srcs
        dsts = self.dsts
        ids = self.ids
        data = self.data
        words = self.words
        return ColumnarRoundBatch(
            self.kinds,
            [ki[i] for i in indices],
            [srcs[i] for i in indices],
            [dsts[i] for i in indices],
            [ids[i] for i in indices],
            [data[i] for i in indices],
            [words[i] for i in indices] if words is not None else None,
        )

    # -- the wire boundary ------------------------------------------- #

    def to_wire(self) -> tuple:
        """Densify for the process boundary (int columns -> arrays)."""
        kinds = self.kinds if self._kind_slot is None else tuple(self._kind_slot)
        words = self.words
        return (
            kinds,
            _int_column(self.kind_idx),
            _int_column(self.srcs),
            _int_column(self.dsts),
            self.ids,
            self.data,
            None if words is None else _int_column(words),
        )

    @classmethod
    def from_wire(cls, blob: tuple) -> "ColumnarRoundBatch":
        """Rebuild a field-mode batch; kinds re-intern once per table
        entry, int columns un-box back to lists in one C pass."""
        kinds, kind_idx, srcs, dsts, ids, data, words = blob
        return cls(
            tuple(map(sys.intern, kinds)),
            kind_idx if type(kind_idx) is list else list(kind_idx),
            srcs if type(srcs) is list else list(srcs),
            dsts if type(dsts) is list else list(dsts),
            ids if type(ids) is list else list(ids),
            data if type(data) is list else list(data),
            None
            if words is None
            else (words if type(words) is list else list(words)),
        )

    # -- word accounting --------------------------------------------- #

    def ensure_words(self, word_bits: int) -> Tuple[list, bool]:
        """The per-entry word column (computed once, then cached on the
        batch and shipped with it).

        Returns ``(words, ok)``; ``ok`` is ``False`` when some payload
        is not a scalar — the engines treat that as a violation and let
        the reference replay raise the canonical ``TypeError``.
        """
        words = self.words
        if words is not None:
            return words, self.words_ok
        int_cache, scalar_cache = word_caches(word_bits)
        int_get = int_cache.get
        scalar_get = scalar_cache.get
        out: list = []
        append = out.append
        ok = True
        ids_col = self.ids
        i = 0
        for data in self.data:
            total = len(ids_col[i])
            i += 1
            if data:
                try:
                    for value in data:
                        # Inlined copy of scalar_words_cached's dispatch
                        # — keep in lockstep (repro/ncc/message.py).
                        cls = value.__class__
                        if cls is int:
                            scalar = int_get(value)
                            if scalar is None:
                                scalar = _scalar_words(value, word_bits)
                                int_cache[value] = scalar
                        elif cls is float or cls is bool or value is None:
                            scalar = 1
                        else:
                            key = (cls, value)
                            scalar = scalar_get(key)
                            if scalar is None:
                                scalar = _scalar_words(value, word_bits)
                                scalar_cache[key] = scalar
                        total += scalar
                except TypeError:
                    ok = False
                    append(0)
                    continue
            append(total)
        self.words = out
        self.words_ok = ok
        return out, ok

    # -- materialisation --------------------------------------------- #

    def materialize(self, i: int) -> Message:
        """The entry-``i`` ``Message``, built at most once per entry.

        Object mode hands back the original (stamping ``src`` in place,
        as the fast engine's delivery does); field mode builds one via
        ``Message.__new__`` + dict fill and meters the construction.
        """
        built = self._built
        if built is None:
            built = self._built = [None] * len(self.srcs)
        message = built[i]
        if message is not None:
            return message
        messages = self.messages
        if messages is not None:
            message = messages[i]
            src = self.srcs[i]
            if message.src != src:
                message.__dict__["src"] = src  # frozen dataclass: fill
            built[i] = message
            return message
        message = Message.__new__(Message)
        inner = message.__dict__
        inner["kind"] = self.kinds[self.kind_idx[i]]
        inner["ids"] = self.ids[i]
        inner["data"] = self.data[i]
        inner["src"] = self.srcs[i]
        built[i] = message
        _COLUMNAR_COUNTS["materialized"] += 1
        return message

    def to_sends(self) -> List[Tuple[int, int, Message]]:
        """Back to an ``(src, dst, message)`` list in plan order (the
        reference-replay / object-staging conversion)."""
        messages = self.messages
        srcs = self.srcs
        dsts = self.dsts
        if messages is not None:
            return list(zip(srcs, dsts, messages))
        materialize = self.materialize
        return [
            (srcs[i], dsts[i], materialize(i)) for i in range(len(srcs))
        ]


class ColumnarInbox:
    """One receiver's inbox as a lazy column slice.

    List-like for everything protocol code does with an inbox —
    ``len``/truth (no materialisation), iteration, indexing, equality
    against plain lists, concatenation — but the backing ``Message``
    objects are built only when the box is actually touched.  The forced
    form is cached, and entry construction is at-most-once *per batch*
    (sub-views share the batch's build cache), so identity is stable
    across repeated touches.
    """

    __slots__ = ("_batch", "_indices", "_forced")

    def __init__(self, batch: ColumnarRoundBatch, indices) -> None:
        self._batch = batch
        self._indices = indices
        self._forced: Optional[list] = None

    def _force(self) -> list:
        forced = self._forced
        if forced is None:
            counts = _COLUMNAR_COUNTS
            before = counts["materialized"]
            materialize = self._batch.materialize
            forced = self._forced = [materialize(i) for i in self._indices]
            counts["inbox_materialized"] += counts["materialized"] - before
        return forced

    def __len__(self) -> int:
        return len(self._indices)

    def __bool__(self) -> bool:
        return len(self._indices) > 0

    def __iter__(self):
        return iter(self._force())

    def __getitem__(self, item):
        return self._force()[item]

    def __eq__(self, other):
        if isinstance(other, ColumnarInbox):
            return self._force() == other._force()
        if isinstance(other, list):
            return self._force() == other
        return NotImplemented

    __hash__ = None  # mutable container semantics, like list

    def __add__(self, other):
        if isinstance(other, ColumnarInbox):
            return self._force() + other._force()
        if isinstance(other, list):
            return self._force() + other
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, list):
            return other + self._force()
        return NotImplemented

    def kind_views(self) -> Dict[str, "ColumnarInbox"]:
        """This box split by kind into lazy sub-views (preserving order).

        The per-kind grouping is pure int/identity work on the kind
        columns — no entry materialises until one *kind's* view is
        touched, which is how ``InboxView.take`` keeps untaken kinds
        columnar.  Only meaningful in field mode (``kinds`` present).
        """
        batch = self._batch
        kinds = batch.kinds
        kind_idx = batch.kind_idx
        index: Dict[str, ColumnarInbox] = {}
        index_get = index.get
        for i in self._indices:
            kind = kinds[kind_idx[i]]
            sub = index_get(kind)
            if sub is None:
                index[kind] = ColumnarInbox(batch, [i])
            else:
                sub._indices.append(i)
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "forced" if self._forced is not None else "columnar"
        return f"ColumnarInbox({len(self._indices)} messages, {state})"


# ---------------------------------------------------------------------- #
# Routed batches: (plan_idx column, batch wire form)                     #
# ---------------------------------------------------------------------- #
#
# The sharded engine's transport shape: a routed slice of a round is the
# receiver-merge-ready pair of a plan-index column and a batch in wire
# form.  The parent routes with it (stage direction) and workers relay
# with it (exchange direction) — both sides gather/validate columns,
# neither constructs a message.


def encode_routed_entries(entries) -> tuple:
    """Columnarise routed ``(plan_idx, src, dst, message)`` entries.

    The parent's stage-direction encoder for *object-staged* plans:
    reads message attributes into columns (no construction, no copy of
    the payload tuples).
    """
    if not entries:
        return ((), None)
    kind_of: dict = {}
    setdefault = kind_of.setdefault
    kind_idx = [setdefault(m.kind, len(kind_of)) for _, _, _, m in entries]
    return (
        tuple(e[0] for e in entries),
        (
            tuple(kind_of),
            _int_column(kind_idx),
            _int_column([e[1] for e in entries]),
            _int_column([e[2] for e in entries]),
            [m.ids for _, _, _, m in entries],
            [m.data for _, _, _, m in entries],
            None,
        ),
    )


def routed_count(routed: tuple) -> int:
    """Number of entries in a routed blob, without decoding it."""
    return len(routed[0])


def routed_receivers(routed: tuple) -> tuple:
    """The raw receiver column of a routed blob — the parent's
    strict-mode arrival count reads it without materialising anything."""
    return routed[1][3]


# ---------------------------------------------------------------------- #
# Grouped field tuples: (key, [(kind, ids, data, src)]) groups           #
# ---------------------------------------------------------------------- #
#
# The field-tuple twins of encode_grouped/decode_grouped, sharing the
# *same blob shape*: the sharded workers hold backlogs and spills as
# field tuples (never objects), so their side of the boundary reads and
# writes fields while the parent keeps using encode_grouped (its mirror
# holds real messages) — either decoder accepts either encoder's blob.


def encode_grouped_fields(groups) -> tuple:
    """Encode ``(key, [(kind, ids, data, src), ...])`` groups."""
    keys: List[int] = []
    offsets: List[int] = [0]
    kind_of: dict = {}
    setdefault = kind_of.setdefault
    kind_idx: List[int] = []
    srcs: List[int] = []
    ids_col: list = []
    data_col: list = []
    for key, entries in groups:
        keys.append(key)
        for kind, ids, data, src in entries:
            kind_idx.append(setdefault(kind, len(kind_of)))
            srcs.append(src)
            ids_col.append(ids)
            data_col.append(data)
        offsets.append(len(kind_idx))
    cols = (
        (tuple(kind_of), kind_idx, srcs, ids_col, data_col)
        if kind_idx
        else _EMPTY_COLS
    )
    return (keys, offsets, cols)


def decode_grouped_fields(blob: tuple):
    """Rebuild ``(key, [(kind, ids, data, src), ...])`` groups — field
    tuples only, no ``Message`` construction (kinds re-interned)."""
    keys, offsets, cols = blob
    kinds, kind_idx, srcs, ids_list, data_list = cols
    table = [sys.intern(kind) for kind in kinds]
    fields = [
        (table[ki], ids, data, src)
        for ki, src, ids, data in zip(kind_idx, srcs, ids_list, data_list)
    ]
    return [
        (key, fields[offsets[i] : offsets[i + 1]])
        for i, key in enumerate(keys)
    ]


# --------------------------------------------------------------------- #
# Observability trailers                                                #
# --------------------------------------------------------------------- #
#
# A fourth shape rides the request/response envelopes of
# ``repro.service.api``: one *optional* trailing element past the fixed
# ``_WIRE_KEYS`` width.  Outbound it carries the compact trace context
# ``(trace_id, parent_span_id)``; inbound it carries the worker's span
# tree flattened into columns (``repro.obs.trace.encode_span_columns``
# — same struct-of-arrays idea as the message columns above).  Peers
# that predate tracing — or requests with tracing disabled — simply
# ship the bare tuple; ``wire_body`` makes decoding agnostic.


def attach_trailer(wire: tuple, trailer) -> tuple:
    """Append one observability trailer element to a wire envelope."""
    return wire + (trailer,)


# --------------------------------------------------------------------- #
# Record integrity (CRC-32C)                                            #
# --------------------------------------------------------------------- #
# The request journal frames each on-disk record with a CRC-32C
# (Castagnoli, the iSCSI/ext4 polynomial — materially better error
# detection than CRC-32/ISO-HDLC for short records).  The stdlib only
# ships the zlib polynomial, so the table-driven form lives here next to
# the envelope helpers: journal records *are* wire envelopes, and the
# checksum is part of their framing contract.

_CRC32C_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def _crc32c_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CRC32C_POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _crc32c_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC-32C of ``data`` (chainable via ``crc`` for streaming use)."""
    crc ^= 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def wire_body(wire: tuple, width: int) -> tuple:
    """The fixed-width envelope, with any trailer sliced off."""
    return wire[:width] if len(wire) > width else wire


def wire_trailer(wire: tuple, width: int):
    """The trailer element, or ``None`` when the envelope is bare."""
    return wire[width] if len(wire) > width else None
