"""Initial knowledge graphs for NCC0.

In NCC0 each node starts knowing the IDs of its out-neighbours in a
directed *initial knowledge graph* ``Gk``.  The paper fixes ``Gk`` to a
directed path for concreteness ("Typically, Gk will be a low-degree
graph"), which is what :func:`path_knowledge` builds; the other generators
exist for experiments on alternative starting topologies.

A knowledge graph is represented as ``dict[int, set[int]]`` mapping a node
ID to the set of IDs it initially knows (not including itself; knowing
yourself is implicit).
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Set

from repro.ncc.ids import IdSpace

KnowledgeGraph = Dict[int, Set[int]]


def path_knowledge(ids: Sequence[int]) -> KnowledgeGraph:
    """Directed path ``ids[0] -> ids[1] -> ... -> ids[n-1]``.

    Node ``ids[i]`` knows ``ids[i+1]`` — the paper's ``Gk``.  The path
    order is the order of ``ids``, i.e. simulator index order, which is an
    arbitrary order as far as the protocols are concerned.
    """
    known: KnowledgeGraph = {node_id: set() for node_id in ids}
    for left, right in zip(ids, ids[1:]):
        known[left].add(right)
    return known


def cycle_knowledge(ids: Sequence[int]) -> KnowledgeGraph:
    """Directed cycle: like the path, plus ``ids[-1] -> ids[0]``."""
    known = path_knowledge(ids)
    if len(ids) > 1:
        known[ids[-1]].add(ids[0])
    return known


def complete_knowledge(ids: Sequence[int]) -> KnowledgeGraph:
    """Every node knows every other node: the NCC1 initial state."""
    all_ids = set(ids)
    return {node_id: all_ids - {node_id} for node_id in ids}


def random_tree_knowledge(ids: Sequence[int], seed: int = 0) -> KnowledgeGraph:
    """A random rooted tree: each non-root knows its parent.

    Used by ablation experiments on alternative low-degree ``Gk``.
    """
    known: KnowledgeGraph = {node_id: set() for node_id in ids}
    rng = random.Random(seed)
    for i in range(1, len(ids)):
        parent = ids[rng.randrange(i)]
        known[ids[i]].add(parent)
    return known


def knowledge_for_variant(ids: Sequence[int], variant) -> KnowledgeGraph:
    """Default knowledge graph for a config variant (path vs complete)."""
    from repro.ncc.config import Variant

    if variant == Variant.NCC1:
        return complete_knowledge(ids)
    return path_knowledge(ids)
