"""Round/message metrics and bound-comparison helpers.

The paper's results are statements of the form "protocol P takes Õ(f(n))
rounds".  :class:`RoundStats` captures what a run actually cost, and the
ratio helpers normalise measured costs by the claimed bound so benches can
report flat (or decaying) ratio curves as evidence of reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class PhaseRecord:
    """Rounds/messages consumed by one labelled protocol phase."""

    label: str
    rounds: int
    messages: int


@dataclass(frozen=True)
class RoundStats:
    """Immutable snapshot of a network's meters."""

    n: int
    rounds: int
    simulated_rounds: int
    charged_rounds: int
    messages: int
    words: int
    send_cap: int
    recv_cap: int
    max_round_load: int
    phases: Tuple[PhaseRecord, ...] = ()

    def phase_rounds(self) -> Dict[str, int]:
        """Total rounds per phase label (labels may repeat across phases)."""
        out: Dict[str, int] = {}
        for record in self.phases:
            out[record.label] = out.get(record.label, 0) + record.rounds
        return out

    def per_log_n(self) -> float:
        """rounds / log2(n) — flat for O(log n) protocols."""
        return self.rounds / max(1.0, math.log2(max(2, self.n)))

    def per_polylog(self, power: int) -> float:
        """rounds / log2(n)^power."""
        return self.rounds / max(1.0, math.log2(max(2, self.n)) ** power)

    def ratio_to(self, bound: float) -> float:
        """rounds / bound — the bound-normalised cost."""
        return self.rounds / max(1.0, bound)


def log2n(n: int) -> float:
    """log2(n) clamped below at 1 (bound arithmetic convenience)."""
    return max(1.0, math.log2(max(2, n)))


def polylog(n: int, power: int = 1) -> float:
    """log2(n)**power clamped below at 1."""
    return log2n(n) ** power
