"""Multiprocess sharded round execution: ``NCCConfig.engine = "sharded"``.

The paper's NCC model is embarrassingly parallel *within* a round — each
node's sends depend only on its own local state, and all effects land at
the synchronous round barrier.  This engine exploits exactly that
structure: the ``n`` simulated nodes are partitioned into contiguous
shards, each owned by a persistent OS worker process, and every round
runs as a two-phase barrier exchange:

1. **Stage** — the parent routes the round's sends to the shard owning
   each *sender*, shipping each shard's slice as one routed columnar
   blob (:mod:`repro.ncc.wire`) — gathered straight from a
   columnar-staged plan's own columns, or columnarised off the message
   attributes of an object-staged one.  Workers validate as *column
   passes* against shard-local replica knowledge (gating over the
   src/receiver columns, word accounting over the payload columns, send
   caps as one counting pass) and bucket survivors by the shard owning
   each *receiver*.  Entries whose receiver lives in the same shard are
   retained as column references; cross-shard buckets travel back to
   the parent as gathered column slices.  A staging worker never
   constructs a ``Message``.
2. **Exchange + deliver** — at the barrier the parent relays each
   cross-shard slice to the receiver's owner *verbatim* (strict-mode
   arrival counts read the blob's receiver column raw).  Workers merge
   their retained and relayed columns per receiver in global plan order
   (every staged entry carries its plan index), apply backlog-first
   FIFO delivery under the receive cap (spilling in defer mode, as
   field tuples — worker backlogs hold no objects either), update their
   replica knowledge, and return the inboxes as one grouped columnar
   batch plus compact deltas (knowledge gains, backlog consumption,
   spills, meters, their construction count).

The parent then merges the per-shard inboxes in deterministic node
order (shards are contiguous index ranges, so concatenating shard
results in shard order is simulator-index order) and applies the same
deltas to its **authoritative mirror** — ``Network.known``,
``Network._deferred`` and all meters stay bit-identical to what the
reference engine would have produced.  The merged inboxes stay columnar
(:class:`~repro.ncc.wire.ColumnarInbox` slices that re-intern kinds and
materialise lazily), so end to end a violation-free sharded round
builds ``Message`` objects only for the entries protocol code actually
touches — ``Network.engine_stats()`` meters both sides.  Protocol code
(which runs in the parent and reads ``net.known`` / ``net.mem`` freely)
never observes the sharding.

**Equivalence guarantee.**  Like the fast engine, any round that would
violate a model constraint is discarded and replayed through the
in-parent reference loop, which raises the same exception with the same
attributes and the same partial delivery state; the workers are then
resynchronized from the parent's post-replay state.  Violation-free
rounds take the sharded path, whose inboxes, knowledge updates and
meters match the reference loop exactly.  The differential, cap-fuzz
and determinism suites enforce this for multiple shard counts.

**Performance shape.**  Each simulated message crosses a process
boundary at least twice (stage reply, inbox return).  The columnar
codec cuts the per-crossing cost — pickling a handful of flat arrays
instead of walking every ``Message`` object (``benchmarks/
bench_multiprocess.py`` races the two transports on captured round
batches) — but per-message Python work remains on both sides, so on
few-core hosts the sharded engine still trades throughput for the
architecture; the same benchmark records the honest sharded-vs-fast
ratio by shard count.  The engine's value is (a) the barrier-exchange
execution model itself, mirroring how a real NCC deployment would run,
and (b) scaling headroom for workloads whose per-round local
computation dominates message volume.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import weakref
from collections import Counter, deque
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from operator import itemgetter

from repro.ncc.config import EnforcementMode
from repro.ncc.engine import ReferenceEngine, engine_counts
from repro.ncc.message import Message, scalar_words_cached, word_caches
from repro.ncc.wire import (
    ColumnarInbox,
    ColumnarRoundBatch,
    decode_grouped,
    decode_grouped_fields,
    decode_id_groups,
    encode_grouped,
    encode_grouped_fields,
    encode_id_groups,
    encode_routed_entries,
    materialized_total,
    note_delivered_columnar,
    routed_receivers,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ncc.network import Network, RoundPlan

Inboxes = Dict[int, List[Message]]

#: Worker exit code used by the crash path (diagnostics only).
_WORKER_DEATH = 70


def partition_nodes(ids: Sequence[int], shards: int) -> List[Tuple[int, ...]]:
    """Split ``ids`` (simulator index order) into contiguous shard slices.

    Deterministic and balanced: the first ``len(ids) % shards`` shards
    get one extra node.  ``shards`` is clamped to ``[1, len(ids)]``.
    """
    n = len(ids)
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    out: List[Tuple[int, ...]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        out.append(tuple(ids[start : start + size]))
        start += size
    return out


def fork_context():
    """``fork`` where available, else the platform default context.

    Fork gives cheap persistent workers that inherit module state (the
    service's crash-probe test seam relies on that); shared by this
    engine's shard workers and the service executor's process drain.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ---------------------------------------------------------------------- #
# Worker side                                                            #
# ---------------------------------------------------------------------- #


class _ShardState:
    """One worker's replica: its owned nodes' knowledge and backlogs."""

    def __init__(self, init: dict) -> None:
        self.owned: Tuple[int, ...] = tuple(init["owned"])
        self.local_index = {v: i for i, v in enumerate(self.owned)}
        self.shard_of: Dict[int, int] = init["shard_of"]
        self.shard_id: int = init["shard_id"]
        self.n_shards: int = init["n_shards"]
        self.word_bits: int = init["word_bits"]
        self.max_words: int = init["max_words"]
        self.send_cap: int = init["send_cap"]
        self.recv_cap: int = init["recv_cap"]
        self.mode: str = init["enforcement"]  # EnforcementMode.value
        self.known: Dict[int, set] = {
            v: set(members) for v, members in init["known"].items()
        }
        # Backlogs hold (words, kind, ids, data, src) *field tuples* —
        # a worker never constructs a Message object; defer-mode
        # redelivery appends the fields into the next result batch and
        # never recomputes a size.
        self.deferred: Dict[int, deque] = {}
        for v, tail in init.get("deferred", {}).items():
            self.deferred[v] = deque(
                (m.words(self.word_bits), m.kind, m.ids, m.data, m.src)
                for m in tail
            )
        # Word-count memoization: the process-wide pair for this width
        # (pure: word_bits is fixed for life).
        self._int_words, self._scalar_words = word_caches(self.word_bits)
        # The validated stage batch and its same-shard entries
        # ``(plan_idx, dst, j)``, retained between the two phases.
        self._stage_batch: Optional[ColumnarRoundBatch] = None
        self._local_staged: List[Tuple[int, int, int]] = []
        # Materialisation baseline: fork copies the parent's process-wide
        # meters, so this worker's own constructions are (total - base).
        # Shipped with every deliver delta — the parent's engine stats
        # (and the zero-construction acceptance test) read it.
        self._mat_base = materialized_total()

    # -- phase 1: validate + stage ---------------------------------- #

    def stage(self, grants, routed):
        """Validate this shard's sends; bucket survivors by receiver shard.

        ``routed`` is the parent's ``(plan_idx column, batch wire form)``
        slice for this shard's senders.  Validation is pure column work —
        word accounting over the payload columns (cached on the batch, so
        the receiver shards never re-size a relayed entry), gating over
        the src/receiver columns, the send cap as one counting pass — and
        the cross-shard buckets are *gathered column slices* of the same
        batch: a staging worker never constructs a ``Message``.  Returns
        ``(violation, remote_blobs, local_counts)`` where ``remote_blobs``
        maps receiver-shard id -> a routed blob and ``local_counts``
        lists ``(dst, count)`` for entries retained in this shard.
        Staging mutates no replica state, so a violating round aborts
        cleanly.
        """
        known = self.known
        for u, v in grants:  # parent pre-filters to this shard's nodes
            granted = known.get(u)
            if granted is not None and v != u:
                granted.add(v)
        self._local_staged = []
        self._stage_batch = None
        local = self._local_staged
        plan_idxs, batch_wire = routed
        if batch_wire is None:
            return (False, {}, ())
        batch = ColumnarRoundBatch.from_wire(batch_wire)
        # ensure_words enforces the word caches' growth bound when it
        # computes (and a precomputed column inserts nothing), covering
        # the once-per-round word_caches() call this path used to make.
        words_col, words_ok = batch.ensure_words(self.word_bits)
        if not words_ok:
            # Non-scalar payload: flag a violation so the parent's
            # reference replay raises the exact TypeError the
            # in-process engines raise.
            return (True, {}, ())
        if words_col and max(words_col) > self.max_words:
            return (True, {}, ())
        srcs = batch.srcs
        dsts = batch.dsts
        shard_of = self.shard_of
        own = self.shard_id
        last_src = None
        known_to_src: Optional[set] = None
        remote: Dict[int, list] = {}
        local_counts: Counter = Counter()
        for j, (src, dst) in enumerate(zip(srcs, dsts)):
            if src != last_src:
                known_to_src = known.get(src)
                if known_to_src is None:
                    return (True, {}, ())
                last_src = src
            # Self-sends fail here too: src never appears in known[src].
            if dst not in known_to_src:
                return (True, {}, ())
            target = shard_of.get(dst)
            if target == own:
                local.append((plan_idxs[j], dst, j))
                local_counts[dst] += 1
            elif target is None:
                # A granted-but-phantom recipient (possible under custom
                # knowledge graphs): let the reference replay produce its
                # exact behaviour.
                return (True, {}, ())
            else:
                remote.setdefault(target, []).append(j)
        # Amortized send cap: one counting pass, only when this shard's
        # total could overdrive a sender at all.
        if len(srcs) > self.send_cap:
            per_sender = Counter(srcs)
            if max(per_sender.values()) > self.send_cap:
                return (True, {}, ())
        self._stage_batch = batch
        return (
            False,
            {
                target: (
                    tuple(plan_idxs[j] for j in bucket),
                    batch.gather(bucket).to_wire(),
                )
                for target, bucket in remote.items()
            },
            tuple(local_counts.items()),
        )

    # -- phase 2: barrier exchange + delivery ----------------------- #

    def deliver(self, relayed_blobs):
        """Merge relayed + retained columns and deliver to owned nodes.

        ``relayed_blobs`` are the other shards' routed column slices for
        this shard's receivers, relayed verbatim by the parent.  The
        merge is pure column work: staged entries are ``(plan_idx,
        batch, j)`` references, delivered entries append column cells
        into one result batch, and backlogs/spills move as field tuples
        — no ``Message`` is ever constructed worker-side.  Applies
        replica mutations immediately (the parent pre-checks the only
        phase-2 violation — strict receive caps — before relaying, so
        this phase cannot fail).  Returns the per-receiver inboxes as a
        grouped columnar batch plus the compact deltas the parent
        mirrors.
        """
        staged: Dict[int, list] = {}
        own = self._stage_batch
        for plan_idx, dst, j in self._local_staged:
            staged.setdefault(dst, []).append((plan_idx, own, j))
        for plan_idxs, batch_wire in relayed_blobs:
            batch = ColumnarRoundBatch.from_wire(batch_wire)
            batch_dsts = batch.dsts
            for j, plan_idx in enumerate(plan_idxs):
                staged.setdefault(batch_dsts[j], []).append(
                    (plan_idx, batch, j)
                )
        self._local_staged = []
        self._stage_batch = None

        deferred = self.deferred
        receivers = set(staged)
        receivers.update(v for v, q in deferred.items() if q)
        local_index = self.local_index
        unbounded = self.mode == EnforcementMode.UNBOUNDED.value
        recv_cap = self.recv_cap
        known = self.known

        out = ColumnarRoundBatch.builder()
        append_from = out.append_from
        append_fields = out.append_fields
        out_col = out.srcs  # cumulative length drives the group offsets
        keys: List[int] = []
        offsets: List[int] = [0]
        gains: List[Tuple[int, List[int]]] = []
        backlog_takes: List[Tuple[int, int]] = []
        spills: List[Tuple[int, list]] = []
        messages_delivered = 0
        words_delivered = 0
        max_load = 0

        for dst in sorted(receivers, key=local_index.__getitem__):
            backlog = deferred.get(dst)
            bucket = staged.get(dst)
            if bucket:
                # plan_idx leads and is globally unique: global plan
                # order, never comparing the batch references.
                bucket.sort(key=itemgetter(0))
            else:
                bucket = ()
            arrivals = (len(backlog) if backlog else 0) + len(bucket)
            take = arrivals if unbounded else min(arrivals, recv_cap)
            from_backlog = min(len(backlog), take) if backlog else 0
            gained: List[int] = []
            for _ in range(from_backlog):
                words, kind, ids, data, src = backlog.popleft()
                append_fields(kind, ids, data, src, words)
                words_delivered += words
                gained.append(src)
                gained.extend(ids)
            staged_take = take - from_backlog
            for _, sb, j in bucket[:staged_take]:
                append_from(sb, j)
                words_delivered += sb.words[j]
                gained.append(sb.srcs[j])
                gained.extend(sb.ids[j])
            tail = bucket[staged_take:]
            if tail:
                queue = deferred.get(dst)
                if queue is None:
                    deferred[dst] = queue = deque()
                spill_fields = []
                for _, sb, j in tail:
                    kind = sb.kinds[sb.kind_idx[j]]
                    ids = sb.ids[j]
                    data = sb.data[j]
                    src = sb.srcs[j]
                    spill_fields.append((kind, ids, data, src))
                    queue.append((sb.words[j], kind, ids, data, src))
                spills.append((dst, spill_fields))
            if from_backlog:
                backlog_takes.append((dst, from_backlog))
            if not take:
                continue
            keys.append(dst)
            offsets.append(len(out_col))
            messages_delivered += take
            if take > max_load:
                max_load = take
            known_to_dst = known[dst]
            known_to_dst.update(gained)
            known_to_dst.discard(dst)
            gains.append((dst, gained))

        return (
            (keys, offsets, out.to_wire()),
            encode_id_groups(gains),
            backlog_takes,
            encode_grouped_fields(spills),
            messages_delivered,
            words_delivered,
            max_load,
            materialized_total() - self._mat_base,
        )

    def sync(self, known_blob, deferred_blob) -> None:
        """Replace this shard's replica from the parent's authoritative
        state (after a violation fallback, or on ``Network.reset``).
        Both sides of the resync travel as wire batches: an id-group
        blob for knowledge, a grouped-message blob for backlogs — which
        this side reads as *field tuples* (sizes recomputed through the
        shared caches), keeping the replica object-free."""
        self.known = {v: set(members) for v, members in decode_id_groups(known_blob)}
        word_bits = self.word_bits
        int_cache = self._int_words
        scalar_cache = self._scalar_words
        deferred: Dict[int, deque] = {}
        for v, entries in decode_grouped_fields(deferred_blob):
            queue = deque()
            for kind, ids, data, src in entries:
                words = len(ids)
                for value in data:
                    words += scalar_words_cached(
                        value, word_bits, int_cache, scalar_cache
                    )
                queue.append((words, kind, ids, data, src))
            deferred[v] = queue
        self.deferred = deferred
        self._local_staged = []
        self._stage_batch = None


def _worker_main(conn, init: dict) -> None:  # pragma: no cover - subprocess
    """Worker entry point: a lockstep command loop over one pipe."""
    try:
        state = _ShardState(init)
        while True:
            try:
                cmd = conn.recv()
            except EOFError:
                return
            op = cmd[0]
            if op == "round":
                conn.send(state.stage(cmd[1], cmd[2]))
            elif op == "deliver":
                conn.send(state.deliver(cmd[1]))
            elif op == "sync":
                state.sync(cmd[1], cmd[2])
            elif op == "ping":
                conn.send(("pong", state.shard_id))
            elif op == "stop":
                return
    except Exception:
        # Surface the traceback to the parent instead of dying silently;
        # the parent raises it as a RuntimeError.
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
        os._exit(_WORKER_DEATH)
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ---------------------------------------------------------------------- #
# Parent side                                                            #
# ---------------------------------------------------------------------- #


def _shutdown_workers(conns, procs, escalations=None) -> None:
    """Finalizer: stop worker processes without referencing the engine.

    Escalates per process: cooperative ``stop`` + join, then
    ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) — a wedged
    worker can never leak past close().  ``escalations`` is a plain
    mutable dict (never the engine: the finalizer must not keep it
    alive) whose ``"terminated"``/``"killed"`` counts feed the engine's
    teardown stats.
    """
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            if escalations is not None:
                escalations["terminated"] += 1
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            if escalations is not None:
                escalations["killed"] += 1
            proc.kill()
            proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass


class ShardedEngine:
    """Round execution sharded across persistent worker processes.

    The shard count comes from ``NCCConfig.engine_shards`` (clamped to
    ``n``).  Workers are spawned lazily at the first delivering round, so
    constructing a sharded network is as cheap as any other, and are torn
    down by :meth:`close` (which :meth:`Network.close` and the service
    pool's discard paths call) or, failing that, a GC finalizer.
    """

    name = "sharded"

    def __init__(self, net: "Network") -> None:
        self.net = net
        self._reference = ReferenceEngine(net)
        self.shards = max(1, min(int(getattr(net.config, "engine_shards", 2)), net.n))
        ids = net.ids.ids
        self._owned = partition_nodes(ids, self.shards)
        self.shards = len(self._owned)
        self._shard_of: Dict[int, int] = {
            v: s for s, owned in enumerate(self._owned) for v in owned
        }
        self._conns: Optional[list] = None
        self._procs: list = []
        self._grants: List[Tuple[int, int]] = []
        self._finalizer = None
        # Teardown escalation counters, updated in place by the
        # _shutdown_workers finalizer (shared dict, not engine attrs, so
        # the finalizer holds no reference to the engine).
        self.teardown_escalations: Dict[str, int] = {"terminated": 0, "killed": 0}
        # Per-shard Message constructions reported with each deliver
        # delta (cumulative per worker lifetime).  Zero on the sharded
        # path by design — workers stage, relay and merge columns — and
        # asserted zero by the acceptance tests; a reference fallback
        # resync leaves it untouched (the replay runs in the parent).
        self._worker_materialized: Dict[int, int] = {}

    # -- lifecycle --------------------------------------------------- #

    def _spawn(self) -> None:
        net = self.net
        ctx = fork_context()
        conns = []
        procs = []
        for s, owned in enumerate(self._owned):
            init = {
                "owned": owned,
                "shard_of": self._shard_of,
                "shard_id": s,
                "n_shards": self.shards,
                "word_bits": net.word_bits,
                "max_words": net.config.max_words,
                "send_cap": net.send_cap,
                "recv_cap": net.recv_cap,
                "enforcement": net.config.enforcement.value,
                "known": {v: tuple(net.known[v]) for v in owned},
                "deferred": {
                    v: list(net._deferred[v])
                    for v in owned
                    if net._deferred.get(v)
                },
            }
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, init),
                daemon=True,
                name=f"ncc-shard-{s}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        self._conns = conns
        self._procs = procs
        # The spawn snapshot already contains every grant issued so far.
        self._grants.clear()
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, conns, procs, self.teardown_escalations
        )

    def close(self) -> None:
        """Stop the worker processes (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()  # runs _shutdown_workers exactly once
            self._finalizer = None
        self._conns = None
        self._procs = []

    def worker_stats(self) -> Dict[str, int]:
        """Worker lifecycle counters: shard count plus how many teardown
        escalations (SIGTERM / SIGKILL) past the cooperative stop were
        ever needed on this engine's workers."""
        return {"shards": self.shards, **self.teardown_escalations}

    def stats(self) -> Dict[str, int]:
        """Engine-observability counters (:meth:`Network.engine_stats`):
        the parent-process meters plus the workers' own construction
        count — zero whenever the sharded column path held end to end."""
        counts = engine_counts(self.net.word_bits)
        counts["worker_messages_materialized"] = sum(
            self._worker_materialized.values()
        )
        return counts

    def reset(self) -> None:
        """:meth:`Network.reset` hook: resync replicas from the parent's
        freshly reset state.  Workers stay warm — that is the point of
        pooled sharded networks."""
        self._grants.clear()
        if self._conns is not None:
            self._resync()

    def note_grant(self, u: int, v: int) -> None:
        """:meth:`Network.grant_knowledge` hook: queue the grant for the
        sender-side replicas; flushed with the next round's stage batch."""
        self._grants.append((u, v))

    # -- round execution --------------------------------------------- #

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError:
            raise RuntimeError(
                "sharded engine worker died mid-round (EOF on pipe)"
            ) from None
        if reply and reply[0] == "error":
            raise RuntimeError(f"sharded engine worker failed:\n{reply[1]}")
        return reply

    def _resync(self) -> None:
        """Push the parent's authoritative per-shard state to workers.

        If a worker is gone (crash, torn-down pipe), the replicas are
        unrecoverable in place — close the engine instead; the next
        delivering round respawns workers from the parent's state, which
        is always authoritative, so nothing is lost.
        """
        net = self.net
        known = net.known
        deferred = net._deferred
        try:
            for s, conn in enumerate(self._conns):
                owned = self._owned[s]
                known_blob = encode_id_groups((v, known[v]) for v in owned)
                deferred_blob = encode_grouped(
                    (v, deferred[v]) for v in owned if deferred.get(v)
                )
                conn.send(("sync", known_blob, deferred_blob))
        except OSError:
            self.close()

    def _fallback(
        self, plan: "RoundPlan", observer=None, started: float = 0.0
    ) -> Inboxes:
        """Replay through the reference loop (exact errors, exact partial
        state), then resynchronize the replicas from the mutated parent.

        When a round observer is installed the replay reports here as a
        ``fallback`` phase (the reference engine itself stays silent —
        it only reports when it is the network's own engine)."""
        replay_at = perf_counter() if observer is not None else 0.0
        try:
            return self._reference.deliver(plan)
        finally:
            if self._conns is not None:
                self._resync()
            if observer is not None:
                observer(
                    self.net.rounds,
                    {
                        "validate": replay_at - started,
                        "fallback": perf_counter() - replay_at,
                    },
                    0,
                    self.net.pending_deferred(),
                )

    def deliver(self, plan: "RoundPlan") -> Inboxes:
        net = self.net
        if not plan and not any(net._deferred.values()):
            # Quiescent barrier round: no IPC, just the meters.
            net.rounds += 1
            net.simulated_rounds += 1
            inboxes: Inboxes = {}
            for tracer in net.tracers:
                tracer(net.rounds, inboxes)
            if net.round_observer is not None:
                net.round_observer(net.rounds, {}, 0, 0)
            return inboxes

        if self._conns is None:
            self._spawn()
        try:
            return self._deliver_sharded(plan)
        except (OSError, EOFError, RuntimeError):
            # Worker IPC failed mid-round: the replicas are gone, but the
            # parent state is authoritative, so tear the pool down — a
            # later round respawns it cleanly — and surface the failure.
            self.close()
            raise

    def _route_sends(self, sends):
        """Route an object-staged plan: one columnar slice per sender
        shard, read straight off the message attributes (no construction,
        no payload copies)."""
        shard_of = self._shard_of
        per_shard: List[list] = [[] for _ in range(self.shards)]
        for idx, (src, dst, message) in enumerate(sends):
            s = shard_of.get(src)
            if s is None:  # unknown sender ID: reference raises exactly
                return None, True
            per_shard[s].append((idx, src, dst, message))
        return [encode_routed_entries(bucket) for bucket in per_shard], False

    def _route_batch(self, batch):
        """Route a columnar-staged plan: gather each sender shard's
        column slice directly — native columns from plan to worker with
        zero per-message object work anywhere."""
        shard_of = self._shard_of
        per_shard: List[list] = [[] for _ in range(self.shards)]
        for idx, src in enumerate(batch.srcs):
            s = shard_of.get(src)
            if s is None:  # unknown sender ID: reference raises exactly
                return None, True
            per_shard[s].append(idx)
        return [
            (
                (tuple(bucket), batch.gather(bucket).to_wire())
                if bucket
                else ((), None)
            )
            for bucket in per_shard
        ], False

    def _deliver_sharded(self, plan: "RoundPlan") -> Inboxes:
        net = self.net
        observer = net.round_observer
        t0 = perf_counter() if observer is not None else 0.0
        conns = self._conns

        # Route to the shard owning each sender (plan order is preserved
        # per shard; entries carry their global plan index so receivers
        # can re-merge in exact plan order).  Each shard's slice ships
        # as one routed columnar blob; a columnar-staged plan routes by
        # gathering its own columns, an object-staged plan columnarises
        # off the message attributes — neither constructs anything.
        batch = plan._batch
        if batch is not None and plan._sends is None:
            routed, violation = self._route_batch(batch)
        else:
            routed, violation = self._route_sends(plan.sends)
        if violation:
            return self._fallback(plan, observer, t0)

        # Phase 1 — stage.  Grants queued since the last round ride
        # along, each to the shard owning the granted node.
        shard_of = self._shard_of
        shard_grants: List[list] = [[] for _ in range(self.shards)]
        if self._grants:
            for u, v in self._grants:
                s = shard_of.get(u)
                if s is not None:
                    shard_grants[s].append((u, v))
            self._grants.clear()
        for s, conn in enumerate(conns):
            conn.send(("round", shard_grants[s], routed[s]))
        replies = [self._recv(conn) for conn in conns]

        # Cross-shard blobs are relayed *as the workers' gathered column
        # slices*: the strict-mode arrival count below reads each blob's
        # receiver column raw, and the receiving worker merges the
        # columns directly — no decode/re-encode at either side.
        route: List[list] = [[] for _ in range(self.shards)]
        arrivals: Counter = Counter()
        strict = net.config.enforcement is EnforcementMode.STRICT
        for shard_violation, remote_blobs, local_counts in replies:
            if shard_violation:
                violation = True
                break
            for target, blob in remote_blobs.items():
                route[target].append(blob)
                if strict:
                    # Counter.update counts iterable elements in C.
                    arrivals.update(routed_receivers(blob))
            if strict:
                for dst, count in local_counts:
                    arrivals[dst] += count
        if not violation and strict:
            # Strict receive caps are the only phase-2 violation; checked
            # here, against the parent's own staging summary plus its
            # backlog mirror, so workers can commit deliveries
            # immediately.  (A backlog can exist even in strict mode:
            # the reference loop stages into the queue *before* raising,
            # so post-violation rounds start with a non-empty one.)
            for dst, queue in net._deferred.items():
                if queue:
                    arrivals[dst] += len(queue)
            if arrivals and max(arrivals.values()) > net.recv_cap:
                violation = True
        if violation:
            return self._fallback(plan, observer, t0)
        t1 = perf_counter() if observer is not None else 0.0

        # Phase 2 — barrier exchange + delivery.
        for s, conn in enumerate(conns):
            conn.send(("deliver", route[s]))
        deltas = [self._recv(conn) for conn in conns]
        t2 = perf_counter() if observer is not None else 0.0

        # Merge in shard order == simulator index order (contiguous
        # shards), and mirror every delta onto the parent's state.  The
        # inboxes stay *columnar*: each shard's result batch becomes
        # lazy ColumnarInbox slices (from_wire re-interns the kind
        # table, so the msg() identity invariant holds if and when an
        # entry materialises).  Only the defer-mode spill mirror
        # materialises here — the parent's backlog holds real messages
        # because a later violation fallback replays them through the
        # reference loop.
        known = net.known
        net_deferred = net._deferred
        inboxes = {}
        messages_delivered = 0
        words_delivered = 0
        max_load = 0
        worker_materialized = self._worker_materialized
        for s, delta in enumerate(deltas):
            (part_keys, part_offsets, part_wire), gains_blob, backlog_takes, \
                spills_blob, msgs, words, load, constructed = delta
            if part_keys:
                part_batch = ColumnarRoundBatch.from_wire(part_wire)
                for i, dst in enumerate(part_keys):
                    inboxes[dst] = ColumnarInbox(
                        part_batch, range(part_offsets[i], part_offsets[i + 1])
                    )
            for dst, gained in decode_id_groups(gains_blob):
                known_to_dst = known[dst]
                known_to_dst.update(gained)
                known_to_dst.discard(dst)
            for dst, taken in backlog_takes:
                queue = net_deferred[dst]
                for _ in range(taken):
                    queue.popleft()
            for dst, tail in decode_grouped(spills_blob):
                net_deferred[dst].extend(tail)
            messages_delivered += msgs
            words_delivered += words
            if load > max_load:
                max_load = load
            worker_materialized[s] = constructed
        note_delivered_columnar(messages_delivered)

        net.messages_delivered += messages_delivered
        net.words_delivered += words_delivered
        net.rounds += 1
        net.simulated_rounds += 1
        if max_load > net.max_round_load:
            net.max_round_load = max_load
        for tracer in net.tracers:
            tracer(net.rounds, inboxes)
        if observer is not None:
            observer(
                net.rounds,
                {
                    "validate": t1 - t0,
                    "exchange": t2 - t1,
                    "deliver": perf_counter() - t2,
                },
                max_load,
                net.pending_deferred(),
            )
        return inboxes
