"""Multiprocess sharded round execution: ``NCCConfig.engine = "sharded"``.

The paper's NCC model is embarrassingly parallel *within* a round — each
node's sends depend only on its own local state, and all effects land at
the synchronous round barrier.  This engine exploits exactly that
structure: the ``n`` simulated nodes are partitioned into contiguous
shards, each owned by a persistent OS worker process, and every round
runs as a two-phase barrier exchange:

1. **Stage** — the parent routes the round's sends to the shard owning
   each *sender*, shipping each shard's slice as one columnar wire
   batch (:mod:`repro.ncc.wire`) rather than per-message pickled
   objects.  Workers validate their senders' sends against shard-local
   replica knowledge (gating, word budgets, send caps), stamp them, and
   bucket the survivors by the shard owning each *receiver*.  Messages
   whose receiver lives in the same shard are retained locally;
   cross-shard buckets travel back to the parent as encoded entry
   batches.
2. **Exchange + deliver** — at the barrier the parent relays each
   cross-shard bucket to the receiver's owner *without decoding it*
   (strict-mode arrival counts read the blob's receiver column raw).
   Workers merge their retained and relayed messages per receiver in
   global plan order (every staged entry carries its plan index), apply
   backlog-first FIFO delivery under the receive cap (spilling in defer
   mode), update their replica knowledge, and return the inboxes plus
   compact deltas (knowledge gains, backlog consumption, spills,
   meters) — again as columnar batches; decoding re-interns message
   kinds, so the ``msg()`` identity invariant survives the boundary by
   construction.

The parent then merges the per-shard inboxes in deterministic node
order (shards are contiguous index ranges, so concatenating shard
results in shard order is simulator-index order) and applies the same
deltas to its **authoritative mirror** — ``Network.known``,
``Network._deferred`` and all meters stay bit-identical to what the
reference engine would have produced.  Protocol code (which runs in the
parent and reads ``net.known`` / ``net.mem`` freely) never observes the
sharding.

**Equivalence guarantee.**  Like the fast engine, any round that would
violate a model constraint is discarded and replayed through the
in-parent reference loop, which raises the same exception with the same
attributes and the same partial delivery state; the workers are then
resynchronized from the parent's post-replay state.  Violation-free
rounds take the sharded path, whose inboxes, knowledge updates and
meters match the reference loop exactly.  The differential, cap-fuzz
and determinism suites enforce this for multiple shard counts.

**Performance shape.**  Each simulated message crosses a process
boundary at least twice (stage reply, inbox return).  The columnar
codec cuts the per-crossing cost — pickling a handful of flat arrays
instead of walking every ``Message`` object (``benchmarks/
bench_multiprocess.py`` races the two transports on captured round
batches) — but per-message Python work remains on both sides, so on
few-core hosts the sharded engine still trades throughput for the
architecture; the same benchmark records the honest sharded-vs-fast
ratio by shard count.  The engine's value is (a) the barrier-exchange
execution model itself, mirroring how a real NCC deployment would run,
and (b) scaling headroom for workloads whose per-round local
computation dominates message volume.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import weakref
from collections import Counter, deque
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.ncc.config import EnforcementMode
from repro.ncc.engine import ReferenceEngine
from repro.ncc.message import Message, scalar_words_cached, word_caches
from repro.ncc.wire import (
    decode_entries,
    decode_grouped,
    decode_id_groups,
    encode_entries,
    encode_grouped,
    encode_id_groups,
    entry_receivers,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ncc.network import Network, RoundPlan

Inboxes = Dict[int, List[Message]]

#: Worker exit code used by the crash path (diagnostics only).
_WORKER_DEATH = 70


def partition_nodes(ids: Sequence[int], shards: int) -> List[Tuple[int, ...]]:
    """Split ``ids`` (simulator index order) into contiguous shard slices.

    Deterministic and balanced: the first ``len(ids) % shards`` shards
    get one extra node.  ``shards`` is clamped to ``[1, len(ids)]``.
    """
    n = len(ids)
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    out: List[Tuple[int, ...]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        out.append(tuple(ids[start : start + size]))
        start += size
    return out


def fork_context():
    """``fork`` where available, else the platform default context.

    Fork gives cheap persistent workers that inherit module state (the
    service's crash-probe test seam relies on that); shared by this
    engine's shard workers and the service executor's process drain.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ---------------------------------------------------------------------- #
# Worker side                                                            #
# ---------------------------------------------------------------------- #


class _ShardState:
    """One worker's replica: its owned nodes' knowledge and backlogs."""

    def __init__(self, init: dict) -> None:
        self.owned: Tuple[int, ...] = tuple(init["owned"])
        self.local_index = {v: i for i, v in enumerate(self.owned)}
        self.shard_of: Dict[int, int] = init["shard_of"]
        self.shard_id: int = init["shard_id"]
        self.n_shards: int = init["n_shards"]
        self.word_bits: int = init["word_bits"]
        self.max_words: int = init["max_words"]
        self.send_cap: int = init["send_cap"]
        self.recv_cap: int = init["recv_cap"]
        self.mode: str = init["enforcement"]  # EnforcementMode.value
        self.known: Dict[int, set] = {
            v: set(members) for v, members in init["known"].items()
        }
        # Backlogs hold (words, message) so defer-mode redelivery never
        # recomputes a size.
        self.deferred: Dict[int, deque] = {}
        for v, tail in init.get("deferred", {}).items():
            self.deferred[v] = deque(
                (m.words(self.word_bits), m) for m in tail
            )
        # Word-count memoization: the process-wide pair for this width
        # (pure: word_bits is fixed for life).
        self._int_words, self._scalar_words = word_caches(self.word_bits)
        # Same-shard staged messages retained between the two phases.
        self._local_staged: List[Tuple[int, int, int, Message]] = []

    # -- phase 1: validate + stage ---------------------------------- #

    def stage(self, grants, sends_blob):
        """Validate this shard's sends; bucket survivors by receiver shard.

        ``sends_blob`` is the parent's columnar batch of
        ``(plan_idx, src, dst, message)`` entries for this shard's
        senders.  Returns ``(violation, remote_blobs, local_counts)``
        where ``remote_blobs`` maps receiver-shard id -> an encoded
        entry batch of ``(plan_idx, dst, words, message)`` and
        ``local_counts`` lists ``(dst, count)`` for messages retained in
        this shard.  Staging mutates no replica state, so a violating
        round aborts cleanly.
        """
        known = self.known
        for u, v in grants:  # parent pre-filters to this shard's nodes
            granted = known.get(u)
            if granted is not None and v != u:
                granted.add(v)
        self._local_staged = []
        local = self._local_staged
        remote: Dict[int, list] = {}
        local_counts: Counter = Counter()
        int_cache = self._int_words
        scalar_cache = self._scalar_words
        # One word_caches() call per round keeps the shared caches'
        # growth bound enforced on this writer path (the inserts below
        # bypass it); the trim lives in repro/ncc/message.py.
        word_caches(self.word_bits)
        word_bits = self.word_bits
        max_words = self.max_words
        shard_of = self.shard_of
        own = self.shard_id
        last_src = None
        known_to_src: Optional[set] = None
        per_sender: Counter = Counter()
        for idx, src, dst, message in decode_entries(sends_blob):
            if src != last_src:
                known_to_src = known.get(src)
                if known_to_src is None:
                    return (True, {}, ())
                last_src = src
            # Self-sends fail here too: src never appears in known[src].
            if dst not in known_to_src:
                return (True, {}, ())
            words = len(message.ids)
            data = message.data
            if data:
                try:
                    for value in data:
                        words += scalar_words_cached(
                            value, word_bits, int_cache, scalar_cache
                        )
                except TypeError:
                    # Non-scalar payload: flag a violation so the parent's
                    # reference replay raises the exact TypeError the
                    # in-process engines raise.
                    return (True, {}, ())
            if words > max_words:
                return (True, {}, ())
            per_sender[src] += 1
            message.__dict__["src"] = src
            target = shard_of.get(dst)
            if target == own:
                local.append((idx, dst, words, message))
                local_counts[dst] += 1
            elif target is None:
                # A granted-but-phantom recipient (possible under custom
                # knowledge graphs): let the reference replay produce its
                # exact behaviour.
                return (True, {}, ())
            else:
                remote.setdefault(target, []).append((idx, dst, words, message))
        if per_sender and max(per_sender.values()) > self.send_cap:
            return (True, {}, ())
        return (
            False,
            {target: encode_entries(bucket) for target, bucket in remote.items()},
            tuple(local_counts.items()),
        )

    # -- phase 2: barrier exchange + delivery ----------------------- #

    def deliver(self, relayed_blobs):
        """Merge relayed + retained messages and deliver to owned nodes.

        ``relayed_blobs`` are the other shards' encoded entry batches
        for this shard's receivers, relayed verbatim by the parent.
        Applies replica mutations immediately (the parent pre-checks the
        only phase-2 violation — strict receive caps — before relaying,
        so this phase cannot fail).  Returns the per-receiver inboxes
        and the compact deltas the parent mirrors, as wire batches.
        """
        staged: Dict[int, List[Tuple[int, int, int, Message]]] = {}
        for entry in self._local_staged:
            staged.setdefault(entry[1], []).append(entry)
        for blob in relayed_blobs:
            for entry in decode_entries(blob):
                staged.setdefault(entry[1], []).append(entry)
        self._local_staged = []

        deferred = self.deferred
        receivers = set(staged)
        receivers.update(v for v, q in deferred.items() if q)
        local_index = self.local_index
        unbounded = self.mode == EnforcementMode.UNBOUNDED.value
        recv_cap = self.recv_cap
        known = self.known

        inboxes: List[Tuple[int, List[Message]]] = []
        gains: List[Tuple[int, List[int]]] = []
        backlog_takes: List[Tuple[int, int]] = []
        spills: List[Tuple[int, List[Message]]] = []
        messages_delivered = 0
        words_delivered = 0
        max_load = 0

        for dst in sorted(receivers, key=local_index.__getitem__):
            backlog = deferred.get(dst)
            bucket = staged.get(dst, ())
            if bucket:
                bucket = sorted(bucket)  # plan_idx leads: global plan order
            arrivals = (len(backlog) if backlog else 0) + len(bucket)
            take = arrivals if unbounded else min(arrivals, recv_cap)
            from_backlog = min(len(backlog), take) if backlog else 0
            delivered: List[Message] = []
            gained: List[int] = []
            for _ in range(from_backlog):
                words, message = backlog.popleft()
                delivered.append(message)
                words_delivered += words
                gained.append(message.src)
                gained.extend(message.ids)
            staged_take = take - from_backlog
            for _, _, words, message in bucket[:staged_take]:
                delivered.append(message)
                words_delivered += words
                gained.append(message.src)
                gained.extend(message.ids)
            tail = bucket[staged_take:]
            if tail:
                queue = deferred.get(dst)
                if queue is None:
                    deferred[dst] = queue = deque()
                queue.extend((words, m) for _, _, words, m in tail)
                spills.append((dst, [m for _, _, _, m in tail]))
            if from_backlog:
                backlog_takes.append((dst, from_backlog))
            if not delivered:
                continue
            inboxes.append((dst, delivered))
            messages_delivered += len(delivered)
            if len(delivered) > max_load:
                max_load = len(delivered)
            known_to_dst = known[dst]
            known_to_dst.update(gained)
            known_to_dst.discard(dst)
            gains.append((dst, gained))

        return (
            encode_grouped(inboxes),
            encode_id_groups(gains),
            backlog_takes,
            encode_grouped(spills),
            messages_delivered,
            words_delivered,
            max_load,
        )

    def sync(self, known_blob, deferred_blob) -> None:
        """Replace this shard's replica from the parent's authoritative
        state (after a violation fallback, or on ``Network.reset``).
        Both sides of the resync travel as wire batches: an id-group
        blob for knowledge, a grouped-message blob for backlogs."""
        self.known = {v: set(members) for v, members in decode_id_groups(known_blob)}
        word_bits = self.word_bits
        self.deferred = {
            v: deque((m.words(word_bits), m) for m in tail)
            for v, tail in decode_grouped(deferred_blob)
        }
        self._local_staged = []


def _worker_main(conn, init: dict) -> None:  # pragma: no cover - subprocess
    """Worker entry point: a lockstep command loop over one pipe."""
    try:
        state = _ShardState(init)
        while True:
            try:
                cmd = conn.recv()
            except EOFError:
                return
            op = cmd[0]
            if op == "round":
                conn.send(state.stage(cmd[1], cmd[2]))
            elif op == "deliver":
                conn.send(state.deliver(cmd[1]))
            elif op == "sync":
                state.sync(cmd[1], cmd[2])
            elif op == "ping":
                conn.send(("pong", state.shard_id))
            elif op == "stop":
                return
    except Exception:
        # Surface the traceback to the parent instead of dying silently;
        # the parent raises it as a RuntimeError.
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
        os._exit(_WORKER_DEATH)
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ---------------------------------------------------------------------- #
# Parent side                                                            #
# ---------------------------------------------------------------------- #


def _shutdown_workers(conns, procs, escalations=None) -> None:
    """Finalizer: stop worker processes without referencing the engine.

    Escalates per process: cooperative ``stop`` + join, then
    ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) — a wedged
    worker can never leak past close().  ``escalations`` is a plain
    mutable dict (never the engine: the finalizer must not keep it
    alive) whose ``"terminated"``/``"killed"`` counts feed the engine's
    teardown stats.
    """
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - stuck worker
            if escalations is not None:
                escalations["terminated"] += 1
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            if escalations is not None:
                escalations["killed"] += 1
            proc.kill()
            proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass


class ShardedEngine:
    """Round execution sharded across persistent worker processes.

    The shard count comes from ``NCCConfig.engine_shards`` (clamped to
    ``n``).  Workers are spawned lazily at the first delivering round, so
    constructing a sharded network is as cheap as any other, and are torn
    down by :meth:`close` (which :meth:`Network.close` and the service
    pool's discard paths call) or, failing that, a GC finalizer.
    """

    name = "sharded"

    def __init__(self, net: "Network") -> None:
        self.net = net
        self._reference = ReferenceEngine(net)
        self.shards = max(1, min(int(getattr(net.config, "engine_shards", 2)), net.n))
        ids = net.ids.ids
        self._owned = partition_nodes(ids, self.shards)
        self.shards = len(self._owned)
        self._shard_of: Dict[int, int] = {
            v: s for s, owned in enumerate(self._owned) for v in owned
        }
        self._conns: Optional[list] = None
        self._procs: list = []
        self._grants: List[Tuple[int, int]] = []
        self._finalizer = None
        # Teardown escalation counters, updated in place by the
        # _shutdown_workers finalizer (shared dict, not engine attrs, so
        # the finalizer holds no reference to the engine).
        self.teardown_escalations: Dict[str, int] = {"terminated": 0, "killed": 0}

    # -- lifecycle --------------------------------------------------- #

    def _spawn(self) -> None:
        net = self.net
        ctx = fork_context()
        conns = []
        procs = []
        for s, owned in enumerate(self._owned):
            init = {
                "owned": owned,
                "shard_of": self._shard_of,
                "shard_id": s,
                "n_shards": self.shards,
                "word_bits": net.word_bits,
                "max_words": net.config.max_words,
                "send_cap": net.send_cap,
                "recv_cap": net.recv_cap,
                "enforcement": net.config.enforcement.value,
                "known": {v: tuple(net.known[v]) for v in owned},
                "deferred": {
                    v: list(net._deferred[v])
                    for v in owned
                    if net._deferred.get(v)
                },
            }
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, init),
                daemon=True,
                name=f"ncc-shard-{s}",
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        self._conns = conns
        self._procs = procs
        # The spawn snapshot already contains every grant issued so far.
        self._grants.clear()
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, conns, procs, self.teardown_escalations
        )

    def close(self) -> None:
        """Stop the worker processes (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()  # runs _shutdown_workers exactly once
            self._finalizer = None
        self._conns = None
        self._procs = []

    def worker_stats(self) -> Dict[str, int]:
        """Worker lifecycle counters: shard count plus how many teardown
        escalations (SIGTERM / SIGKILL) past the cooperative stop were
        ever needed on this engine's workers."""
        return {"shards": self.shards, **self.teardown_escalations}

    def reset(self) -> None:
        """:meth:`Network.reset` hook: resync replicas from the parent's
        freshly reset state.  Workers stay warm — that is the point of
        pooled sharded networks."""
        self._grants.clear()
        if self._conns is not None:
            self._resync()

    def note_grant(self, u: int, v: int) -> None:
        """:meth:`Network.grant_knowledge` hook: queue the grant for the
        sender-side replicas; flushed with the next round's stage batch."""
        self._grants.append((u, v))

    # -- round execution --------------------------------------------- #

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError:
            raise RuntimeError(
                "sharded engine worker died mid-round (EOF on pipe)"
            ) from None
        if reply and reply[0] == "error":
            raise RuntimeError(f"sharded engine worker failed:\n{reply[1]}")
        return reply

    def _resync(self) -> None:
        """Push the parent's authoritative per-shard state to workers.

        If a worker is gone (crash, torn-down pipe), the replicas are
        unrecoverable in place — close the engine instead; the next
        delivering round respawns workers from the parent's state, which
        is always authoritative, so nothing is lost.
        """
        net = self.net
        known = net.known
        deferred = net._deferred
        try:
            for s, conn in enumerate(self._conns):
                owned = self._owned[s]
                known_blob = encode_id_groups((v, known[v]) for v in owned)
                deferred_blob = encode_grouped(
                    (v, deferred[v]) for v in owned if deferred.get(v)
                )
                conn.send(("sync", known_blob, deferred_blob))
        except OSError:
            self.close()

    def _fallback(
        self, plan: "RoundPlan", observer=None, started: float = 0.0
    ) -> Inboxes:
        """Replay through the reference loop (exact errors, exact partial
        state), then resynchronize the replicas from the mutated parent.

        When a round observer is installed the replay reports here as a
        ``fallback`` phase (the reference engine itself stays silent —
        it only reports when it is the network's own engine)."""
        replay_at = perf_counter() if observer is not None else 0.0
        try:
            return self._reference.deliver(plan)
        finally:
            if self._conns is not None:
                self._resync()
            if observer is not None:
                observer(
                    self.net.rounds,
                    {
                        "validate": replay_at - started,
                        "fallback": perf_counter() - replay_at,
                    },
                    0,
                    self.net.pending_deferred(),
                )

    def deliver(self, plan: "RoundPlan") -> Inboxes:
        net = self.net
        sends = plan.sends
        if not sends and not any(net._deferred.values()):
            # Quiescent barrier round: no IPC, just the meters.
            net.rounds += 1
            net.simulated_rounds += 1
            inboxes: Inboxes = {}
            for tracer in net.tracers:
                tracer(net.rounds, inboxes)
            if net.round_observer is not None:
                net.round_observer(net.rounds, {}, 0, 0)
            return inboxes

        if self._conns is None:
            self._spawn()
        try:
            return self._deliver_sharded(plan, sends)
        except (OSError, EOFError, RuntimeError):
            # Worker IPC failed mid-round: the replicas are gone, but the
            # parent state is authoritative, so tear the pool down — a
            # later round respawns it cleanly — and surface the failure.
            self.close()
            raise

    def _deliver_sharded(self, plan: "RoundPlan", sends) -> Inboxes:
        net = self.net
        observer = net.round_observer
        t0 = perf_counter() if observer is not None else 0.0
        conns = self._conns
        shard_of = self._shard_of

        # Route sends to the shard owning each sender (plan order is
        # preserved per shard; entries carry their global plan index so
        # receivers can re-merge in exact plan order).  Each shard's
        # slice ships as one columnar wire batch.
        per_shard: List[list] = [[] for _ in range(self.shards)]
        violation = False
        for idx, (src, dst, message) in enumerate(sends):
            s = shard_of.get(src)
            if s is None:  # unknown sender ID: reference raises exactly
                violation = True
                break
            per_shard[s].append((idx, src, dst, message))
        if violation:
            return self._fallback(plan, observer, t0)

        # Phase 1 — stage.  Grants queued since the last round ride
        # along, each to the shard owning the granted node.
        shard_grants: List[list] = [[] for _ in range(self.shards)]
        if self._grants:
            for u, v in self._grants:
                s = shard_of.get(u)
                if s is not None:
                    shard_grants[s].append((u, v))
            self._grants.clear()
        for s, conn in enumerate(conns):
            conn.send(("round", shard_grants[s], encode_entries(per_shard[s])))
        replies = [self._recv(conn) for conn in conns]

        # Cross-shard blobs are relayed *encoded*: the strict-mode
        # arrival count below reads each blob's receiver column raw, so
        # the parent never materialises a relayed message.
        route: List[list] = [[] for _ in range(self.shards)]
        arrivals: Counter = Counter()
        strict = net.config.enforcement is EnforcementMode.STRICT
        for shard_violation, remote_blobs, local_counts in replies:
            if shard_violation:
                violation = True
                break
            for target, blob in remote_blobs.items():
                route[target].append(blob)
                if strict:
                    # Counter.update counts iterable elements in C.
                    arrivals.update(entry_receivers(blob))
            if strict:
                for dst, count in local_counts:
                    arrivals[dst] += count
        if not violation and strict:
            # Strict receive caps are the only phase-2 violation; checked
            # here, against the parent's own staging summary plus its
            # backlog mirror, so workers can commit deliveries
            # immediately.  (A backlog can exist even in strict mode:
            # the reference loop stages into the queue *before* raising,
            # so post-violation rounds start with a non-empty one.)
            for dst, queue in net._deferred.items():
                if queue:
                    arrivals[dst] += len(queue)
            if arrivals and max(arrivals.values()) > net.recv_cap:
                violation = True
        if violation:
            return self._fallback(plan, observer, t0)
        t1 = perf_counter() if observer is not None else 0.0

        # Phase 2 — barrier exchange + delivery.
        for s, conn in enumerate(conns):
            conn.send(("deliver", route[s]))
        deltas = [self._recv(conn) for conn in conns]
        t2 = perf_counter() if observer is not None else 0.0

        # Merge in shard order == simulator index order (contiguous
        # shards), and mirror every delta onto the parent's state.
        # Decoding re-interns message kinds, so both the inboxes handed
        # to protocol code and the backlog mirror's copies (a later
        # violation fallback delivers those through the reference loop)
        # satisfy the msg() identity invariant without a repair pass.
        known = net.known
        net_deferred = net._deferred
        inboxes = {}
        messages_delivered = 0
        words_delivered = 0
        max_load = 0
        for part_blob, gains_blob, backlog_takes, spills_blob, msgs, words, load in deltas:
            for dst, box in decode_grouped(part_blob):
                inboxes[dst] = box
            for dst, gained in decode_id_groups(gains_blob):
                known_to_dst = known[dst]
                known_to_dst.update(gained)
                known_to_dst.discard(dst)
            for dst, taken in backlog_takes:
                queue = net_deferred[dst]
                for _ in range(taken):
                    queue.popleft()
            for dst, tail in decode_grouped(spills_blob):
                net_deferred[dst].extend(tail)
            messages_delivered += msgs
            words_delivered += words
            if load > max_load:
                max_load = load

        net.messages_delivered += messages_delivered
        net.words_delivered += words_delivered
        net.rounds += 1
        net.simulated_rounds += 1
        if max_load > net.max_round_load:
            net.max_round_load = max_load
        for tracer in net.tracers:
            tracer(net.rounds, inboxes)
        if observer is not None:
            observer(
                net.rounds,
                {
                    "validate": t1 - t0,
                    "exchange": t2 - t1,
                    "deliver": perf_counter() - t2,
                },
                max_load,
                net.pending_deferred(),
            )
        return inboxes
