"""Connectivity-threshold vector generators (ρ values, Section 6)."""

from __future__ import annotations

import random
from typing import List


def uniform_rho(n: int, value: int) -> List[int]:
    """Every node demands the same edge connectivity ``value``."""
    if value > n - 1:
        raise ValueError("a simple graph cannot give rho > n-1")
    return [value] * n


def bimodal_rho(n: int, high: int, low: int, high_fraction: float = 0.2) -> List[int]:
    """A core of high-demand nodes plus a low-demand periphery."""
    if high > n - 1 or low > n - 1:
        raise ValueError("rho values must be <= n-1")
    core = max(1, int(round(high_fraction * n)))
    return [high] * core + [low] * (n - core)


def power_law_rho(n: int, max_rho: int, exponent: float = 2.0, seed: int = 0) -> List[int]:
    """Heavy-tailed demands: few nodes want high connectivity."""
    rng = random.Random(seed)
    cap = min(max_rho, n - 1)
    weights = [r ** (-exponent) for r in range(1, cap + 1)]
    total = sum(weights)
    out = []
    for _ in range(n):
        x = rng.random() * total
        acc = 0.0
        value = 1
        for r, w in zip(range(1, cap + 1), weights):
            acc += w
            if x <= acc:
                value = r
                break
        out.append(value)
    return out


def ranked_rho(n: int, max_rho: int) -> List[int]:
    """Linearly decaying demands 1..max_rho (deterministic ramp)."""
    cap = min(max_rho, n - 1)
    return [max(1, cap - (i * cap) // max(1, n)) for i in range(n)]
