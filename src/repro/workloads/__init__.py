"""Instance generators for tests, examples and benchmarks.

Families mirror the regimes the paper's analysis distinguishes:

* degree sequences where ``Δ << √m`` (regular/low-degree — the Δ regime
  of Theorem 11) and where ``√m << Δ`` (mass concentrated on few nodes —
  the √m regime and Theorem 20's ``D*`` family);
* tree-realizable sequences of varying shape (stars, paths, caterpillars,
  balanced);
* connectivity threshold vectors (uniform, bimodal, power-law).
"""

from repro.workloads.degree_sequences import (
    concentrated_sequence,
    near_graphic_perturbation,
    power_law_sequence,
    random_graphic_sequence,
    regular_sequence,
    sqrt_m_family,
    star_like_sequence,
)
from repro.workloads.trees import (
    balanced_tree_sequence,
    caterpillar_sequence,
    path_sequence,
    random_tree_sequence,
    star_sequence,
)
from repro.workloads.connectivity import (
    bimodal_rho,
    power_law_rho,
    ranked_rho,
    uniform_rho,
)

__all__ = [
    "balanced_tree_sequence",
    "bimodal_rho",
    "caterpillar_sequence",
    "concentrated_sequence",
    "near_graphic_perturbation",
    "path_sequence",
    "power_law_rho",
    "power_law_sequence",
    "random_graphic_sequence",
    "random_tree_sequence",
    "ranked_rho",
    "regular_sequence",
    "sqrt_m_family",
    "star_like_sequence",
    "star_sequence",
    "uniform_rho",
]
