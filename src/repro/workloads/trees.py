"""Tree-realizable degree sequence generators (``Σd = 2(n-1)``, d >= 1)."""

from __future__ import annotations

import random
from typing import List

from repro.sequential.trees import is_tree_realizable


def star_sequence(n: int) -> List[int]:
    """One hub of degree n-1, the rest leaves (minimum diameter 2)."""
    if n < 2:
        return [0] * n
    return [n - 1] + [1] * (n - 1)


def path_sequence(n: int) -> List[int]:
    """A path: two leaves, n-2 internal degree-2 nodes (max diameter)."""
    if n < 2:
        return [0] * n
    if n == 2:
        return [1, 1]
    return [2] * (n - 2) + [1, 1]


def caterpillar_sequence(n: int, spine_degree: int = 4) -> List[int]:
    """A caterpillar: spine of degree-``spine_degree`` nodes plus leaves."""
    if n < 2:
        return [0] * n
    # k spine nodes consume k-1 internal edges; leaves fill the rest.
    # Pick k so that k*(spine_degree) - 2*(k-1) == n - k  =>  leaves count.
    best = path_sequence(n)
    for k in range(1, n):
        leaves = n - k
        total = 2 * (n - 1)
        spine_total = total - leaves
        # distribute spine_total across k spine nodes, each >= 2 (or >=1 if k==1)
        if k == 1:
            if spine_total == leaves:  # hub star
                return [leaves] + [1] * leaves
            continue
        base, extra = divmod(spine_total, k)
        if base < 2:
            continue
        seq = sorted([base + (1 if i < extra else 0) for i in range(k)], reverse=True)
        candidate = seq + [1] * leaves
        if is_tree_realizable(candidate) and max(candidate) <= n - 1:
            return candidate
    return best


def balanced_tree_sequence(n: int, arity: int = 2) -> List[int]:
    """Degree sequence of a complete ``arity``-ary tree truncated to n nodes."""
    if n < 2:
        return [0] * n
    children = [0] * n
    for child in range(1, n):
        parent = (child - 1) // arity
        children[parent] += 1
    degrees = [children[i] + (0 if i == 0 else 1) for i in range(n)]
    return sorted(degrees, reverse=True)


def random_tree_sequence(n: int, seed: int = 0) -> List[int]:
    """Degree sequence of a uniformly random labeled tree (via Prüfer)."""
    if n < 2:
        return [0] * n
    if n == 2:
        return [1, 1]
    rng = random.Random(seed)
    degree = [1] * n
    for _ in range(n - 2):
        degree[rng.randrange(n)] += 1
    return sorted(degree, reverse=True)
