"""Degree-sequence generators.

All generators return plain ``list[int]`` sequences (callers zip them
onto node IDs).  Every "graphic" generator guarantees graphicality either
by construction (degree sequences of actual graphs) or by explicit
Erdős–Gallai repair, so strict-mode realization tests can rely on the
verdict.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.sequential.erdos_gallai import is_graphic


def regular_sequence(n: int, degree: int) -> List[int]:
    """The d-regular sequence (graphic iff n > d and n*d even).

    The Δ-regime workload for Theorem 11 and Theorem 20's second family.
    """
    if degree >= n or (n * degree) % 2 != 0:
        raise ValueError(f"({n}, {degree})-regular is not graphic")
    return [degree] * n


def random_graphic_sequence(n: int, p: float, seed: int = 0) -> List[int]:
    """Degree sequence of a G(n, p) draw — graphic by construction."""
    rng = random.Random(seed)
    deg = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                deg[i] += 1
                deg[j] += 1
    return deg


def power_law_sequence(
    n: int, exponent: float = 2.5, d_min: int = 1, seed: int = 0
) -> List[int]:
    """A heavy-tailed sequence with Erdős–Gallai repair.

    Draws from a truncated discrete power law, then decrements the
    largest entries until graphic (sum parity first, then EG).
    """
    rng = random.Random(seed)
    degrees = []
    d_max = max(d_min + 1, n - 1)
    weights = [d ** (-exponent) for d in range(d_min, d_max + 1)]
    total_weight = sum(weights)
    for _ in range(n):
        r = rng.random() * total_weight
        acc = 0.0
        value = d_min
        for d, w in zip(range(d_min, d_max + 1), weights):
            acc += w
            if r <= acc:
                value = d
                break
        degrees.append(value)
    return repair_to_graphic(degrees)


def concentrated_sequence(n: int, k: int, seed: int = 0) -> List[int]:
    """All degree mass on the first ``k`` nodes (√m-regime workload).

    The first ``k`` nodes get degree ≈ k (mutually realizable as a dense
    subgraph); the rest get zero.  With ``k ≈ √m`` this is Theorem 20's
    ``D*`` family.
    """
    if k > n:
        raise ValueError("k cannot exceed n")
    head = k - 1 if (k * (k - 1)) % 2 == 0 else k - 2
    head = max(0, head)
    degrees = [head] * k + [0] * (n - k)
    return repair_to_graphic(degrees)


def sqrt_m_family(n: int, m: int) -> List[int]:
    """Theorem 20's ``D*``: ``k = ⌊√m⌋`` nodes sharing ``2m`` degree mass.

    Realized as a near-clique on the first k nodes (so it is graphic);
    the actual edge count is ``k(k-1)/2 ≈ m``.
    """
    import math

    k = max(2, int(math.isqrt(m)))
    k = min(k, n)
    return concentrated_sequence(n, k)


def star_like_sequence(n: int, hubs: int = 1) -> List[int]:
    """``hubs`` high-degree centers, the rest leaves (Δ ≈ n regime)."""
    if hubs < 1 or hubs >= n:
        raise ValueError("need 1 <= hubs < n")
    spokes = n - hubs
    degrees = [spokes] * hubs + [hubs] * spokes
    return repair_to_graphic(degrees)


def near_graphic_perturbation(
    base: List[int], bumps: int, seed: int = 0
) -> List[int]:
    """Perturb a graphic sequence into a (usually) non-graphic one.

    Adds +1 to ``bumps`` random entries — the Theorem 13 envelope
    workload.  No repair: the result may or may not be graphic; tests
    check with the Erdős–Gallai oracle.
    """
    rng = random.Random(seed)
    out = list(base)
    n = len(out)
    for _ in range(bumps):
        i = rng.randrange(n)
        out[i] = min(n - 1, out[i] + 1)
    return out


def repair_to_graphic(degrees: List[int]) -> List[int]:
    """Decrement offending entries until the sequence is graphic.

    Clamps to ``[0, n-1]``, fixes parity, then walks the largest entries
    down while Erdős–Gallai rejects.  Terminates because the all-zero
    sequence is graphic.
    """
    n = len(degrees)
    out = [min(max(0, d), n - 1) for d in degrees]
    if sum(out) % 2 != 0:
        i = out.index(max(out))
        if out[i] > 0:
            out[i] -= 1
        else:
            return out  # all zeros already
    guard = sum(out) + 1
    while not is_graphic(out) and guard > 0:
        i = out.index(max(out))
        out[i] = max(0, out[i] - 2)
        guard -= 1
    return out
