"""Graph-theoretic checks on realized overlays.

Independent of the simulator: pure functions over edge lists / networkx
graphs, used as the final arbiter in tests and benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
from networkx.algorithms.connectivity import local_edge_connectivity

Edge = Tuple[int, int]


def check_simple(edges: Sequence[Edge]) -> bool:
    """No self-loops, no duplicate edges (in either orientation)."""
    seen = set()
    for u, v in edges:
        if u == v:
            return False
        key = (min(u, v), max(u, v))
        if key in seen:
            return False
        seen.add(key)
    return True


def check_degree_match(
    edges: Sequence[Edge], demanded: Dict[int, int], nodes: Iterable[int]
) -> bool:
    """Realized degree equals the demanded degree for every node."""
    degree = {v: 0 for v in nodes}
    for u, v in edges:
        degree[u] += 1
        degree[v] += 1
    return all(degree.get(v, 0) == d for v, d in demanded.items())


def check_tree(edges: Sequence[Edge], nodes: Sequence[int]) -> bool:
    """The edge set forms a spanning tree of ``nodes``."""
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    return nx.is_tree(graph)


def diameter_of(edges: Sequence[Edge], nodes: Sequence[int]) -> Optional[int]:
    """Diameter of the overlay, or ``None`` if disconnected."""
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    if len(nodes) <= 1:
        return 0
    if not nx.is_connected(graph):
        return None
    return nx.diameter(graph)


def check_connectivity_thresholds(
    edges: Sequence[Edge], rho: Dict[int, int], nodes: Sequence[int]
) -> bool:
    """``Conn(u, v) >= min(rho(u), rho(v))`` for every pair (max-flow).

    Uses the hub shortcut when possible is deliberately avoided — this
    is the *independent* check, so it computes real local edge
    connectivity for every demanded pair.
    """
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    node_list = list(nodes)
    for i, u in enumerate(node_list):
        for v in node_list[i + 1 :]:
            need = min(rho.get(u, 0), rho.get(v, 0))
            if need <= 0:
                continue
            if local_edge_connectivity(graph, u, v) < need:
                return False
    return True


def edge_connectivity_matrix(
    edges: Sequence[Edge], nodes: Sequence[int]
) -> Dict[Tuple[int, int], int]:
    """All-pairs local edge connectivity (small n diagnostics)."""
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    out: Dict[Tuple[int, int], int] = {}
    node_list = list(nodes)
    for i, u in enumerate(node_list):
        for v in node_list[i + 1 :]:
            out[(u, v)] = local_edge_connectivity(graph, u, v)
    return out
