"""Overlay extraction: node memory -> networkx graph, awareness audits.

The paper's definitions (Problem Statements, §1): an overlay edge is
*constructed* when at least one endpoint knows it, and *explicit* when
both do.  These functions audit node memory directly, so tests verify
what nodes actually recorded — not what the orchestrator wishes they had.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.core.result import NBRS_KEY
from repro.ncc.network import Network

Edge = Tuple[int, int]


def overlay_graph(net: Network) -> nx.Graph:
    """The realized overlay as a networkx graph (nodes = all node IDs)."""
    graph = nx.Graph()
    graph.add_nodes_from(net.node_ids)
    for v in net.node_ids:
        for u in net.mem[v].get(NBRS_KEY, ()):
            graph.add_edge(v, u)
    return graph


def check_implicit(net: Network) -> bool:
    """Every recorded edge is held by at least one endpoint (trivially
    true by construction) *and* the holder actually knows the other
    endpoint's ID — the NCC awareness requirement."""
    for v in net.node_ids:
        for u in net.mem[v].get(NBRS_KEY, ()):
            if u == v:
                return False
            if not net.knows(v, u):
                return False
    return True


def check_explicit(net: Network) -> bool:
    """Every edge is recorded by *both* endpoints, and both know both IDs."""
    if not check_implicit(net):
        return False
    for v in net.node_ids:
        for u in net.mem[v].get(NBRS_KEY, ()):
            if v not in net.mem[u].get(NBRS_KEY, set()):
                return False
    return True


def holders_of(net: Network, edge: Edge) -> List[int]:
    """Which endpoints recorded this edge (diagnostic)."""
    u, v = edge
    out = []
    if v in net.mem[u].get(NBRS_KEY, set()):
        out.append(u)
    if u in net.mem[v].get(NBRS_KEY, set()):
        out.append(v)
    return out
