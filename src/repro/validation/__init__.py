"""Independent validation of realized overlays (networkx-backed).

Every experiment's output graph is checked against the theorem it claims
to reproduce: degree match, simplicity, local edge connectivity
(max-flow), tree-ness, diameter, explicitness, approximation ratios.
"""

from repro.validation.overlay import (
    overlay_graph,
    check_explicit,
    check_implicit,
)
from repro.validation.graph_checks import (
    check_connectivity_thresholds,
    check_degree_match,
    check_simple,
    check_tree,
    diameter_of,
    edge_connectivity_matrix,
)

__all__ = [
    "check_connectivity_thresholds",
    "check_degree_match",
    "check_explicit",
    "check_implicit",
    "check_simple",
    "check_tree",
    "diameter_of",
    "edge_connectivity_matrix",
    "overlay_graph",
]
