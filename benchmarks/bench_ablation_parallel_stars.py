"""X-A1 ablation: the q-parallel star removal of Algorithm 3.

Algorithm 3's one structural change over sequential Havel–Hakimi is
removing ``q = ⌊N/(δ+1)⌋`` stars per phase instead of one.  The ablation
compares the distributed realizer's phase count against the
one-star-per-phase baseline (the direct transcription of sequential HH,
whose phase count equals its step count and is computed exactly below).
On workloads with many same-degree nodes the speedup approaches
``N/(δ+1)`` — the mechanism behind Lemma 10.
"""

from common import Experiment, make_net
from repro.core.degree_realization import realize_degree_sequence
from repro.workloads import concentrated_sequence, regular_sequence


def sequential_hh_steps(seq) -> int:
    """Steps of classical Havel–Hakimi = phases of a q=1 realizer."""
    work = list(seq)
    steps = 0
    while True:
        work.sort(reverse=True)
        if not work or work[0] == 0:
            return steps
        d = work[0]
        work[0] = 0
        for i in range(1, d + 1):
            work[i] -= 1
        steps += 1


def parallel_run(seq, seed=34):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = realize_degree_sequence(net, demands, sort_fidelity="charged")
    assert result.realized
    return result


def experiment() -> Experiment:
    rows = []
    ok = True
    for label, seq in (
        ("regular d=4, n=64", regular_sequence(64, 4)),
        ("regular d=4, n=128", regular_sequence(128, 4)),
        ("regular d=8, n=128", regular_sequence(128, 8)),
        ("concentrated k=10, n=64", concentrated_sequence(64, 10, seed=5)),
    ):
        parallel = parallel_run(seq)
        # Algorithm 3's counter includes the final δ=0 termination phase;
        # subtract it to compare star-removal work fairly.
        work_phases = max(1, parallel.phases - 1)
        baseline = sequential_hh_steps(seq)
        speedup = baseline / work_phases
        delta = max(seq)
        ideal = max(1, seq.count(delta) // (delta + 1))
        ok &= work_phases <= baseline
        rows.append([label, baseline, work_phases, f"{speedup:.1f}x", ideal])
    ok &= any(float(r[3][:-1]) >= 4 for r in rows)
    return Experiment(
        exp_id="X-A1",
        claim="ablation: q-parallel star removal vs one-star-per-phase "
        "(sequential Havel–Hakimi transcription)",
        headers=["workload", "phases (q=1 baseline)", "phases (parallel q)",
                 "speedup", "initial q = N/(δ+1)"],
        rows=rows,
        shape_holds=ok,
        notes="The parallel grouping is what turns Θ(n) Havel–Hakimi steps "
        "into O(min{√m, Δ}) phases; the measured reduction tracks N/(δ+1) "
        "on same-degree-heavy inputs.",
    )


def test_ablation_parallel_stars(benchmark):
    def run():
        return parallel_run(regular_sequence(64, 4), seed=35).phases

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
