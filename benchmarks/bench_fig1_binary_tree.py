"""FIG-1: the warm-up balanced binary tree construction (Section 3.1.1).

Regenerates the paper's 8-node example (the figure's r/a/b adoption
process) and sweeps n to confirm the construction stays binary, spanning
and O(log n)-tall in O(log n) rounds.
"""

import math

from common import Experiment, flat_or_decreasing, log2n, make_net
from repro.primitives.binary_tree import (
    build_warmup_binary_tree,
    tree_children,
    tree_height,
    tree_nodes,
)
from repro.primitives.protocol import run_protocol


def figure_ascii(n: int = 8, seed: int = 0) -> str:
    """Reconstruct Figure 1's tree for the n-node path, as ASCII."""
    net = make_net(n, seed=seed)
    root = run_protocol(net, build_warmup_binary_tree(net, "fig1"))
    label = {v: i + 1 for i, v in enumerate(net.node_ids)}

    lines = []

    def walk(v, prefix, tag):
        lines.append(f"{prefix}{tag}{label[v]}")
        kids = tree_children(net, "fig1", v)
        state_kids = []
        from repro.primitives.protocol import ns_state

        state = ns_state(net, v, "fig1")
        if state.get("left") is not None:
            state_kids.append(("L:", state["left"]))
        if state.get("right") is not None:
            state_kids.append(("R:", state["right"]))
        for child_tag, child in state_kids:
            walk(child, prefix + "   ", child_tag)

    walk(root, "", "r:")
    return "\n".join(lines)


def experiment() -> Experiment:
    rows = []
    ratios = []
    for n in (8, 32, 128, 512, 2048):
        net = make_net(n, seed=1)
        root = run_protocol(net, build_warmup_binary_tree(net, "wb"))
        nodes = tree_nodes(net, "wb", root)
        height = tree_height(net, "wb", root)
        spanning = sorted(nodes) == sorted(net.node_ids)
        binary = all(len(tree_children(net, "wb", v)) <= 2 for v in net.node_ids)
        ratio = net.rounds / log2n(n)
        ratios.append(ratio)
        rows.append(
            [n, net.rounds, f"{ratio:.2f}", height,
             math.ceil(math.log2(max(2, n))) + 1, spanning and binary]
        )
    shape = flat_or_decreasing(ratios) and all(r[-1] for r in rows)
    return Experiment(
        exp_id="FIG-1",
        claim="warm-up balanced binary tree: O(log n) rounds, height O(log n)",
        headers=["n", "rounds", "rounds/log2(n)", "height", "height bound", "valid"],
        rows=rows,
        shape_holds=shape,
        notes=(
            "The 8-node example reproduces the text's adoption process "
            "(root 1 adopts 2 and 3, etc.); rounds/log2(n) stays flat."
        ),
    )


def test_fig1_binary_tree(benchmark):
    def run():
        net = make_net(256, seed=1)
        run_protocol(net, build_warmup_binary_tree(net, "wb"))
        return net.rounds

    rounds = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rounds <= 6 * log2n(256)
    exp = experiment()
    assert exp.shape_holds, exp.render()
