"""T-19/T-20: lower-bound tightness — measured rounds / Ω-bound <= polylog.

* Theorem 19: explicit realization needs Ω(Δ/log n) on every instance.
* Theorem 20: implicit realization needs Ω(√m/log n) on the D* family
  and Ω(Δ) (phase-wise) on the regular family.

The reproduction evidence is the tightness ratio staying within a
polylog envelope as the driving parameter grows.
"""

from common import Experiment, log2n, make_net
from repro.core.degree_realization import realize_degree_sequence
from repro.core.explicit import realize_degree_sequence_explicit
from repro.core.lower_bounds import degree_lower_bounds, tightness_ratio
from repro.workloads import regular_sequence, sqrt_m_family


def experiment() -> Experiment:
    rows = []
    ok = True

    # T-19: explicit, regular family, Δ sweep.  Unclamped ratios: the bound
    # Δ/recv_cap can be below one round for small Δ; what must hold is that
    # measured/bound stays flat (a fixed polylog factor) as Δ grows.
    explicit_ratios = []
    for delta in (4, 8, 16, 24):
        n = 64
        seq = regular_sequence(n, delta)
        net = make_net(n, seed=30)
        result = realize_degree_sequence_explicit(
            net, dict(zip(net.node_ids, seq)), sort_fidelity="charged"
        )
        assert result.realized
        bounds = degree_lower_bounds(seq, recv_cap=net.recv_cap)
        ratio = result.stats.rounds / bounds.explicit_rounds
        explicit_ratios.append(ratio)
        rows.append(["T-19 explicit", f"Δ={delta}", result.stats.rounds,
                     f"{bounds.explicit_rounds:.2f}", f"{ratio:.0f}"])
    ok &= explicit_ratios[-1] <= 1.6 * explicit_ratios[0]

    # T-20 family 1: D* (√m concentrated), m sweep.
    sqrt_ratios = []
    for m_target in (64, 256, 1024):
        n = 96
        seq = sqrt_m_family(n, m_target)
        net = make_net(n, seed=31)
        result = realize_degree_sequence(
            net, dict(zip(net.node_ids, seq)), sort_fidelity="charged"
        )
        assert result.realized
        bounds = degree_lower_bounds(seq, recv_cap=net.recv_cap)
        ratio = result.stats.rounds / bounds.implicit_sqrt_m_rounds
        sqrt_ratios.append(ratio)
        rows.append(["T-20 √m family", f"m≈{bounds.m}", result.stats.rounds,
                     f"{bounds.implicit_sqrt_m_rounds:.2f}", f"{ratio:.0f}"])
    ok &= sqrt_ratios[-1] <= 1.6 * sqrt_ratios[0]

    # T-20 family 2: regular (Δ), Δ sweep — phases vs Δ directly.
    for delta in (4, 8, 16):
        n = 64
        seq = regular_sequence(n, delta)
        net = make_net(n, seed=32)
        result = realize_degree_sequence(
            net, dict(zip(net.node_ids, seq)), sort_fidelity="charged"
        )
        assert result.realized
        phase_ratio = result.phases / delta
        ok &= phase_ratio <= 2.5
        rows.append(["T-20 regular", f"Δ={delta}", f"{result.phases} phases",
                     f"{delta}", f"{phase_ratio:.2f}"])

    return Experiment(
        exp_id="T-19/T-20",
        claim="upper bounds are tight to polylog factors against the "
        "Ω(Δ/log n), Ω(√m/log n) and Ω(Δ) lower bounds",
        headers=["bound", "parameter", "measured", "lower bound", "ratio"],
        rows=rows,
        shape_holds=ok,
        notes="Ratios fall (or stay flat) as the driving parameter grows: "
        "the gap is the polylog sorting/broadcast overhead, exactly the "
        "paper's 'tight up to factors of log n'.",
    )


def test_thm19_20_lower_bounds(benchmark):
    def run():
        seq = regular_sequence(64, 8)
        net = make_net(64, seed=33)
        result = realize_degree_sequence(
            net, dict(zip(net.node_ids, seq)), sort_fidelity="charged"
        )
        return result.stats.rounds

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
