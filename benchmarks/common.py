"""Shared infrastructure for the experiment/benchmark harness."""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

sys.setrecursionlimit(200_000)

from repro.analysis.tables import format_table
from repro.ncc.config import NCCConfig, Variant
from repro.ncc.network import Network
from repro.primitives.bbst import build_indexed_path
from repro.primitives.path_ops import build_undirected_path
from repro.primitives.protocol import run_protocol


@dataclass
class Experiment:
    """One reproduced table/figure: id, claim, data, and a verdict."""

    exp_id: str
    claim: str
    headers: Sequence[str]
    rows: List[Sequence]
    shape_holds: bool
    notes: str = ""

    def render(self) -> str:
        verdict = "REPRODUCED" if self.shape_holds else "SHAPE MISMATCH"
        table = format_table(self.headers, self.rows)
        out = [
            f"### {self.exp_id} — {self.claim}",
            "",
            "```",
            table,
            "```",
            "",
            f"**Verdict: {verdict}.** {self.notes}".rstrip(),
            "",
        ]
        return "\n".join(out)


def make_net(n: int, seed: int = 0, **overrides) -> Network:
    return Network(n, NCCConfig(seed=seed, **overrides))


def make_ncc1(n: int, seed: int = 0, **overrides) -> Network:
    return Network(
        n, NCCConfig(seed=seed, variant=Variant.NCC1, random_ids=False, **overrides)
    )


def indexed_net(n: int, seed: int = 0, ns: str = "ip") -> Network:
    """A network with an indexed path (positions + 𝓛) already built."""
    net = make_net(n, seed=seed)

    def proto():
        head = yield from build_undirected_path(net, ns)
        yield from build_indexed_path(net, ns, list(net.node_ids), head)
        return None

    run_protocol(net, proto())
    return net


def log2n(n: int) -> float:
    return max(1.0, math.log2(max(2, n)))


def flat_or_decreasing(series: Sequence[float], slack: float = 1.4) -> bool:
    """Shape check shared by the round-complexity experiments."""
    if len(series) < 2:
        return True
    first = series[0]
    last = series[-1]
    return last <= slack * max(first, 1e-9)
