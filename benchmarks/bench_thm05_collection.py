"""T-5: global collection of k tokens in O(k + log n) rounds."""

from common import Experiment, log2n, make_net
from repro.primitives.bbst import build_bbst
from repro.primitives.collection import global_collect
from repro.primitives.protocol import run_protocol


def measure(n: int, k: int, seed: int = 10):
    net = make_net(n, seed=seed)
    ids = list(net.node_ids)
    step = max(1, (n - 1) // max(1, k))
    holders = {ids[(i * step) % n]: ((ids[i % n],), (i,)) for i in range(k)}
    # Dict collapse for duplicate holders: re-key until we have exactly k.
    i = 0
    while len(holders) < k:
        holders[ids[i]] = ((ids[i],), (1000 + i,))
        i += 1

    def proto():
        ns, root = yield from build_bbst(net)
        members = list(net.node_ids)
        base = net.rounds
        collected = yield from global_collect(
            net, ns, members, root, leader=root, holders=holders
        )
        return net.rounds - base, len(collected) == len(holders)

    return run_protocol(net, proto())


def experiment() -> Experiment:
    rows = []
    ok = True
    # Sweep k at fixed n: cost should be ~ c1*k + c2*log n.
    n = 256
    k_rounds = {}
    for k in (2, 8, 32, 128):
        rounds, valid = measure(n, k)
        k_rounds[k] = rounds
        ok &= valid
        rows.append([f"n={n}", k, rounds, f"{rounds / (k + log2n(n)):.2f}", valid])
    # Sweep n at fixed k.
    for n2 in (32, 128, 512):
        rounds, valid = measure(n2, 16)
        ok &= valid
        rows.append([f"n={n2}", 16, rounds, f"{rounds / (16 + log2n(n2)):.2f}", valid])
    # Linearity in k: quadrupling k must not inflate cost superlinearly.
    linear = k_rounds[128] <= 4 * max(1, k_rounds[32]) + 8 * log2n(n)
    shape = ok and linear
    return Experiment(
        exp_id="T-5",
        claim="global collection of k tokens in O(k + log n) rounds",
        headers=["n", "k", "rounds", "rounds/(k+log n)", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="Pipelined ascent batches several tokens per edge per round, "
        "so the measured constant is < 1; growth in k is (sub)linear.",
    )


def test_thm05_collection(benchmark):
    def run():
        return measure(256, 64, seed=11)[0]

    rounds = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rounds <= 4 * (64 + log2n(256))
    exp = experiment()
    assert exp.shape_holds, exp.render()
