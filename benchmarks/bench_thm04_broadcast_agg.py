"""T-4: global broadcast and global aggregation in O(log n) rounds."""

from common import Experiment, flat_or_decreasing, log2n, make_net
from repro.primitives.bbst import build_bbst
from repro.primitives.broadcast import global_aggregate, global_broadcast
from repro.primitives.protocol import ns_state, run_protocol


def measure(n: int, seed: int = 8):
    net = make_net(n, seed=seed)
    position = {v: i for i, v in enumerate(net.node_ids)}

    def proto():
        ns, root = yield from build_bbst(net)
        members = list(net.node_ids)
        leader = members[n // 2]
        net.grant_knowledge(leader, root)
        base = net.rounds
        yield from global_broadcast(net, ns, members, root, leader, value=(7,))
        bc_rounds = net.rounds - base
        base = net.rounds
        total = yield from global_aggregate(
            net, ns, members, root, leader,
            value_of=lambda v: position[v], combine=lambda a, b: a + b,
        )
        agg_rounds = net.rounds - base
        received = all(
            ns_state(net, v, ns).get("bc_token") == ((), (7,)) for v in members
        )
        return bc_rounds, agg_rounds, total == n * (n - 1) // 2 and received

    return run_protocol(net, proto())


def experiment() -> Experiment:
    rows, ratios = [], []
    for n in (8, 32, 128, 512, 2048):
        bc, agg, valid = measure(n)
        ratio = (bc + agg) / log2n(n)
        ratios.append(ratio)
        rows.append([n, bc, agg, f"{ratio:.2f}", valid])
    shape = flat_or_decreasing(ratios) and all(r[-1] for r in rows)
    return Experiment(
        exp_id="T-4",
        claim="global broadcast and aggregation in O(log n) rounds",
        headers=["n", "broadcast rounds", "aggregation rounds",
                 "(bc+agg)/log2(n)", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="Leader -> root handoff + one tree sweep each way.",
    )


def test_thm04_broadcast_agg(benchmark):
    def run():
        bc, agg, _ = measure(512, seed=9)
        return bc + agg

    rounds = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rounds <= 8 * log2n(512)
    exp = experiment()
    assert exp.shape_holds, exp.render()
