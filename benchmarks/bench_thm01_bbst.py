"""T-1: BBST construction in O(log n) rounds, height <= ceil(log n)+1."""

import math

from common import Experiment, flat_or_decreasing, log2n, make_net
from repro.primitives.bbst import build_bbst
from repro.primitives.protocol import ns_state, run_protocol


def measure(n: int, seed: int = 1):
    net = make_net(n, seed=seed)
    ns, root = run_protocol(net, build_bbst(net))
    depth = {root: 0}
    stack = [root]
    while stack:
        v = stack.pop()
        state = ns_state(net, v, ns)
        for c in (state.get("left"), state.get("right")):
            if c is not None:
                depth[c] = depth[v] + 1
                stack.append(c)
    return net.rounds, max(depth.values()), len(depth)


def experiment() -> Experiment:
    rows, ratios = [], []
    for n in (8, 32, 128, 512, 2048, 4096):
        rounds, height, count = measure(n)
        bound = math.ceil(math.log2(n)) + 1
        ratio = rounds / log2n(n)
        ratios.append(ratio)
        rows.append([n, rounds, f"{ratio:.2f}", height, bound, count == n and height <= bound])
    shape = flat_or_decreasing(ratios) and all(r[-1] for r in rows)
    return Experiment(
        exp_id="T-1",
        claim="BBST (structure 𝓛 + controlled BFS) in O(log n) rounds, "
        "height <= ceil(log n)+1, inorder == Gk",
        headers=["n", "rounds", "rounds/log2(n)", "height", "bound", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="rounds/log2(n) flat (~5): the hidden constant covers level "
        "construction (1 round/level) plus the two-round BFS sweep per level.",
    )


def test_thm01_bbst(benchmark):
    def run():
        return measure(512, seed=2)[0]

    rounds = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rounds <= 8 * log2n(512)
    exp = experiment()
    assert exp.shape_holds, exp.render()
