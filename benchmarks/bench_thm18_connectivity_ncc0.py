"""T-18: NCC0 explicit connectivity realization in Õ(Δ), <= 2x OPT edges."""

from common import Experiment, log2n, make_net
from repro.core.connectivity import realize_connectivity_ncc0
from repro.validation import check_connectivity_thresholds, check_explicit
from repro.workloads import bimodal_rho, power_law_rho, uniform_rho


def measure(n, values, seed=28, validate=True):
    net = make_net(n, seed=seed)
    rho = dict(zip(net.node_ids, values))
    result = realize_connectivity_ncc0(net, rho, sort_fidelity="charged")
    valid = check_explicit(net)
    if validate:
        valid &= check_connectivity_thresholds(result.edges, rho, list(net.node_ids))
    return result, valid


def experiment() -> Experiment:
    rows = []
    ok = True
    # Δ sweep at fixed n: rounds should grow ~linearly with Δ = max ρ.
    delta_rounds = {}
    for delta in (2, 4, 8, 16):
        result, valid = measure(48, uniform_rho(48, delta))
        ok &= valid and result.approximation_ratio <= 2.0 + 1e-9
        bound = delta * log2n(48) ** 3  # Õ(Δ) envelope
        delta_rounds[delta] = result.stats.rounds
        rows.append([f"uniform ρ=Δ={delta}, n=48", result.stats.rounds,
                     f"{result.stats.rounds / (delta + log2n(48)):.1f}",
                     result.num_edges, f"{result.approximation_ratio:.2f}", valid])
    # n sweep at fixed Δ.
    for n in (24, 48, 96):
        result, valid = measure(n, bimodal_rho(n, 6, 2), validate=(n <= 48))
        ok &= valid and result.approximation_ratio <= 2.0 + 1e-9
        rows.append([f"bimodal 6/2, n={n}", result.stats.rounds,
                     f"{result.stats.rounds / (6 + log2n(n)):.1f}",
                     result.num_edges, f"{result.approximation_ratio:.2f}", valid])
    result, valid = measure(32, power_law_rho(32, 8, seed=4))
    ok &= valid
    rows.append(["power-law max 8, n=32", result.stats.rounds,
                 f"{result.stats.rounds / (8 + log2n(32)):.1f}",
                 result.num_edges, f"{result.approximation_ratio:.2f}", valid])
    # Shape: doubling Δ must not blow up super-linearly (allow polylog slack).
    growth = delta_rounds[16] / max(1, delta_rounds[2])
    shape = ok and growth <= (16 / 2) * 2.0
    return Experiment(
        exp_id="T-18",
        claim="NCC0 explicit connectivity realization (Algorithm 6): "
        "Õ(Δ) rounds, edges <= 2 * optimal, fully explicit",
        headers=["workload", "rounds", "rounds/(Δ+log n)", "edges",
                 "ratio", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="Phase 1 = envelope realization on the top d0+1 nodes; "
        "phase 2 = pipelined predecessor flood (Δ-length chains dominate). "
        "Round growth in Δ is ~linear; every run is max-flow validated "
        "(n<=48) and knowledge-level explicit.",
    )


def test_thm18_connectivity_ncc0(benchmark):
    def run():
        result, _ = measure(64, uniform_rho(64, 6), seed=29, validate=False)
        return result.stats.rounds

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
