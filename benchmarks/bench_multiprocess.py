"""X-MP — the multiprocess execution layer: sharded engine + process drain.

Three measurements, recorded to ``BENCH_multiprocess.json``:

**Transport** (``transport_rows``): the columnar wire codec
(``repro/ncc/wire.py``) raced against per-object pickling on the *same*
message batches — the actual per-round staged entries captured from the
thm03 sorting run (the workload the engine rows execute).  Both
transports do the full trip a cross-shard exchange pays:
encode -> ``pickle.dumps`` -> ``pickle.loads`` -> decode for the codec
(the pipe still pickles the column blob), ``dumps`` -> ``loads`` for the
plain-object baseline.  ``speedup_vs_pickle`` is the recorded win; the
per-batch message totals are the bit-identity invariants.

**Sharded engine** (``engine_rows``): one full end-to-end protocol run
(Theorem 3 distributed mergesort, full fidelity — the round-loop-bound
workload) per engine configuration — the in-process ``fast`` engine and
the multiprocess ``sharded`` engine at each of ``SHARD_COUNTS`` — on
fresh identically-seeded networks.  RoundStats are asserted bit-identical
across all configurations (the differential suites are the real gate;
this re-checks at benchmark scale).  The per-config ``rounds_per_sec``
is the honest cost of the barrier-exchange architecture: every simulated
message is pickled across a process boundary at least twice, so on
few-core hosts the sharded engine *loses* to ``fast`` — the recorded
``speedup_vs_fast`` states that plainly rather than hiding it.

**Batch drain** (``drain_rows``): the service benchmark's mixed
60-request batch (five kinds, n ∈ {64, 256}) drained with the response
cache disabled — every request actually executes — through the threaded
drain vs the process drain, both with ``DRAIN_WORKERS`` workers and warm
pools (per-worker pools in the process drain).  Responses are asserted
field-identical between modes.  Request handling is pure Python, so the
threaded drain is GIL-serialized while the process drain runs one
request per core: on a >= ``DRAIN_WORKERS``-core host the target ratio
is ``TARGET_SPEEDUP`` (2x).  Hosts with fewer cores cannot express the
parallelism — there the gate degrades to an *overhead bound*
(``floor_for_cores``): the process drain must stay within IPC-tax
distance of the threaded drain.  The recorded JSON carries the measured
ratio, the host core count, and both targets, so a record produced on a
small container is still an honest, regression-guardable measurement.

Timing is wall-clock (``time.perf_counter``), not process CPU time —
child-process work is invisible to the parent's CPU clock, and wall
time is the honest metric for a parallel drain.
"""

from __future__ import annotations

import gc
import os
import pickle
import time

from common import Experiment
from repro.ncc import wire
from repro.ncc.config import NCCConfig
from repro.ncc.network import Network
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.service import BatchExecutor, NetworkPool, default_registry

from bench_service_throughput import BATCH_SIZE, DISTINCT, build_batch

#: Drain acceptance on hosts with >= DRAIN_WORKERS usable cores.
TARGET_SPEEDUP = 2.0

#: Worker count for both drains (the acceptance configuration).
DRAIN_WORKERS = 4

#: Shard counts the engine benchmark sweeps.
SHARD_COUNTS = (2, 4)

#: Sorting workload scale for the engine comparison.
ENGINE_N = 128
ENGINE_SEED = 11

REPS = 2


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def floor_for_cores(cores: int) -> float:
    """The drain gate this host can honestly express.

    >= DRAIN_WORKERS cores: the full 2x parallel-speedup target.  Two to
    three cores: proportionally reduced.  One core: no parallelism
    exists — bound the process drain's overhead instead (it must deliver
    at least 0.6x the threaded drain's throughput, i.e. the IPC tax may
    not eat more than ~40%).
    """
    if cores >= DRAIN_WORKERS:
        return TARGET_SPEEDUP
    if cores >= 2:
        return min(TARGET_SPEEDUP, 0.65 * cores)
    return 0.6


def _wall(run):
    """Best wall-clock seconds over REPS runs of ``run()`` (GC paused).

    Returns (best_seconds, last_result).
    """
    best = float("inf")
    result = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            started = time.perf_counter()
            result = run()
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, result


# ---------------------------------------------------------------------- #
# Part 1 — sharded engine vs fast engine                                 #
# ---------------------------------------------------------------------- #


def _sorting_run(config: NCCConfig):
    import random

    net = Network(ENGINE_N, config)
    try:
        rng = random.Random(ENGINE_SEED)
        table = {v: rng.randrange(ENGINE_N) for v in net.node_ids}
        _, order = run_protocol(net, distributed_sort(net, lambda v: table[v]))
        return net.stats(), tuple(order)
    finally:
        net.close()


def measure_engines():
    configs = [("fast", 0, NCCConfig(seed=ENGINE_SEED, engine="fast"))]
    for shards in SHARD_COUNTS:
        configs.append(
            (
                f"s{shards}",  # row name: sorting_engine_s<k> (sharded)
                shards,
                NCCConfig(seed=ENGINE_SEED, engine="sharded", engine_shards=shards),
            )
        )
    rows = []
    canonical = None
    fast_rps = None
    for label, shards, config in configs:
        elapsed, (stats, order) = _wall(lambda config=config: _sorting_run(config))
        if canonical is None:
            canonical = (stats, order)
        else:
            assert (stats, order) == canonical, (
                f"engine {label} diverged from fast on the benchmark workload"
            )
        rounds_per_sec = round(stats.simulated_rounds / elapsed, 1)
        if label == "fast":
            fast_rps = rounds_per_sec
        rows.append(
            {
                "workload": f"sorting_engine_{label}",
                "n": ENGINE_N,
                "shards": shards,
                "rounds": stats.rounds,
                "simulated_rounds": stats.simulated_rounds,
                "messages": stats.messages,
                "elapsed_sec": round(elapsed, 4),
                "rounds_per_sec": rounds_per_sec,
                "speedup_vs_fast": round(rounds_per_sec / fast_rps, 3),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Part 2 — wire codec vs per-object pickle on the same round batches     #
# ---------------------------------------------------------------------- #


def _capture_round_batches():
    """The sorting run's per-round staged entries, in plan order.

    A fast-engine tracer records each round's delivered messages as
    ``(plan_idx, src, dst, message)`` entries — the exact shape the
    sharded engine routes across the process boundary — so the
    transport race runs on real protocol traffic, not synthetic
    payloads.
    """
    import random

    net = Network(ENGINE_N, NCCConfig(seed=ENGINE_SEED, engine="fast"))
    batches = []

    def tracer(round_no, inboxes):
        idx = 0
        entries = []
        for dst, box in inboxes.items():
            for message in box:
                entries.append((idx, message.src, dst, message))
                idx += 1
        if entries:
            batches.append(entries)

    net.tracers.append(tracer)
    try:
        rng = random.Random(ENGINE_SEED)
        table = {v: rng.randrange(ENGINE_N) for v in net.node_ids}
        run_protocol(net, distributed_sort(net, lambda v: table[v]))
    finally:
        net.close()
    return batches


def measure_transport():
    """Race codec encode+decode vs pickle dumps+loads, batch by batch."""
    batches = _capture_round_batches()
    total = sum(map(len, batches))
    dumps, loads = pickle.dumps, pickle.loads
    protocol = pickle.HIGHEST_PROTOCOL

    def pickle_trip():
        for entries in batches:
            loads(dumps(entries, protocol))

    def codec_trip():
        for entries in batches:
            wire.decode_entries(loads(dumps(wire.encode_entries(entries), protocol)))

    # Honesty check before timing: the codec must reproduce the batches
    # bit-for-bit (fields, payload types, interned kinds).
    for entries in batches[:: max(1, len(batches) // 8)]:
        assert wire.decode_entries(loads(dumps(wire.encode_entries(entries), protocol))) == entries

    rows = []
    throughput = {}
    for label, trip in (("pickle", pickle_trip), ("codec", codec_trip)):
        elapsed, _ = _wall(trip)
        msgs_per_sec = round(total / elapsed, 1)
        throughput[label] = msgs_per_sec
        bytes_on_wire = (
            sum(len(dumps(e, protocol)) for e in batches)
            if label == "pickle"
            else sum(len(dumps(wire.encode_entries(e), protocol)) for e in batches)
        )
        rows.append(
            {
                "workload": f"transport_{label}",
                "n": ENGINE_N,
                "messages": total,
                "batches": len(batches),
                "wire_bytes": bytes_on_wire,
                "elapsed_sec": round(elapsed, 4),
                "msgs_per_sec": msgs_per_sec,
            }
        )
    speedup = round(throughput["codec"] / throughput["pickle"], 3)
    rows[-1]["speedup_vs_pickle"] = speedup
    return rows, speedup


# ---------------------------------------------------------------------- #
# Part 3 — process drain vs threaded drain (cold: cache disabled)        #
# ---------------------------------------------------------------------- #


def _drain_executor(mode: str):
    return BatchExecutor(
        pool=NetworkPool(),
        registry=default_registry(),
        cache_responses=False,  # cold: all 60 requests actually execute
        mode=mode,
        workers=DRAIN_WORKERS,
    )


def measure_drains():
    batch = build_batch()
    rows = []
    canonical = None
    throughput = {}
    for mode in ("threads", "processes"):
        def run(mode=mode):
            executor = _drain_executor(mode)
            try:
                return executor.run(list(batch)), executor.stats()
            finally:
                executor.close()

        elapsed, (responses, stats) = _wall(run)
        fingerprints = [r.fingerprint() for r in responses]
        assert all(r.error is None for r in responses)
        if canonical is None:
            canonical = fingerprints
        else:
            assert fingerprints == canonical, (
                "process drain changed a response — the drain must be "
                "answer-preserving"
            )
        requests_per_sec = round(len(batch) / elapsed, 2)
        throughput[mode] = requests_per_sec
        rows.append(
            {
                "workload": f"drain_{mode}",
                "n": 0,  # mixed batch
                "requests": len(batch),
                "distinct": len(DISTINCT),
                "workers": DRAIN_WORKERS,
                "rounds": sum(r.rounds for r in responses),
                "messages": sum(r.messages for r in responses),
                "elapsed_sec": round(elapsed, 4),
                "requests_per_sec": requests_per_sec,
                "worker_crashes": stats["worker_crashes"],
            }
        )
    speedup = round(throughput["processes"] / throughput["threads"], 3)
    return rows, speedup


_results_cache = {}


def bench_results():
    """Engine + transport + drain rows (the BENCH_multiprocess.json
    payload); cached."""
    if "rows" not in _results_cache:
        engine_rows = measure_engines()
        transport_rows, transport = measure_transport()
        drain_rows, speedup = measure_drains()
        _results_cache["rows"] = engine_rows + transport_rows + drain_rows
        _results_cache["speedup"] = speedup
        _results_cache["transport"] = transport
    return _results_cache["rows"]


def drain_speedup() -> float:
    bench_results()
    return _results_cache["speedup"]


def transport_speedup() -> float:
    bench_results()
    return _results_cache["transport"]


def experiment() -> Experiment:
    results = bench_results()
    speedup = drain_speedup()
    transport = transport_speedup()
    cores = usable_cores()
    floor = floor_for_cores(cores)
    rows = []
    for r in results:
        rows.append(
            [
                r["workload"],
                r["n"] or "mixed",
                r.get("shards", r.get("workers", r.get("batches", ""))),
                r.get("rounds", ""),
                r["messages"],
                f"{r['elapsed_sec']:.3f}s",
                r.get("rounds_per_sec")
                or r.get("requests_per_sec")
                or r.get("msgs_per_sec"),
            ]
        )
    return Experiment(
        exp_id="X-MP",
        claim="multiprocess layer: sharded barrier-exchange engine is "
        "bit-identical over the columnar wire codec; codec beats "
        "per-object pickle on real round batches; process drain "
        "multiplies cold batch throughput by core count",
        headers=["workload", "n", "shards/wk/batches", "rounds", "messages",
                 "best time", "per-sec"],
        rows=rows,
        shape_holds=speedup >= floor and transport > 1.0,
        notes=(
            f"Engine: thm03 sorting n={ENGINE_N} end-to-end, RoundStats "
            "asserted bit-identical across fast and sharded "
            f"{SHARD_COUNTS} (each simulated message crosses a process "
            "boundary twice, so sharding trades throughput for the "
            "barrier-exchange architecture on few-core hosts).  "
            f"Transport: codec {transport:.2f}x pickle "
            "(gate > 1.0x) on the sorting run's captured round batches, "
            "round trips asserted bit-identical.  Drain: "
            f"the mixed {BATCH_SIZE}-request service batch, response "
            f"cache disabled, {DRAIN_WORKERS} workers; responses "
            "asserted field-identical between threaded and process "
            f"drains.  Measured process/threads ratio {speedup:.2f}x on "
            f"{cores} usable core(s); gate {floor:.2f}x (the full "
            f"{TARGET_SPEEDUP}x parallel target applies on >= "
            f"{DRAIN_WORKERS} cores — fewer cores cannot express it, so "
            "the gate becomes an IPC-overhead bound).  Wall-clock "
            "timing: child CPU is invisible to the parent's CPU clock."
        ),
    )


def test_transport_codec_smoke():
    """The codec must beat per-object pickle on the captured batches."""
    rows, speedup = measure_transport()
    assert speedup > 1.0, rows


def test_multiprocess_smoke(benchmark):
    """Smoke-scale: tiny drain through both modes, answers preserved."""
    batch = build_batch()[:6]
    threaded = _drain_executor("threads")
    try:
        expected = [r.fingerprint() for r in threaded.run(list(batch))]
    finally:
        threaded.close()
    processes = _drain_executor("processes")

    def run():
        return processes.run(list(batch))

    try:
        benchmark.pedantic(run, rounds=1, iterations=1)
        got = [r.fingerprint() for r in processes.run(list(batch))]
    finally:
        processes.close()
    assert got == expected
