"""X-A2 ablation: charged vs full-fidelity sorting.

The charged mode computes the same sorted path and charges
``ceil(c * log2(n)^3)`` rounds.  This ablation verifies, on the overlap
range, that (a) outputs are bit-identical, and (b) the charged round
cost upper-bounds the measured full-fidelity cost (so charged-mode
scaling sweeps never understate round complexity).
"""

import random

from common import Experiment, log2n, make_net
from repro.core.degree_realization import realize_degree_sequence
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort
from repro.workloads import random_graphic_sequence


def sort_both(n, seed=36):
    rng = random.Random(seed * 100 + n)
    values = [rng.randrange(n) for _ in range(n)]
    out = {}
    for fidelity in ("full", "charged"):
        net = make_net(n, seed=seed)
        table = dict(zip(net.node_ids, values))
        ns, order = run_protocol(
            net, distributed_sort(net, lambda v: table[v], fidelity=fidelity)
        )
        out[fidelity] = (order, net.rounds)
    return out


def experiment() -> Experiment:
    rows = []
    ok = True
    for n in (16, 32, 64, 128, 256):
        out = sort_both(n)
        same = out["full"][0] == out["charged"][0]
        dominated = out["charged"][1] >= out["full"][1]
        ok &= same and dominated
        rows.append([f"sort n={n}", out["full"][1], out["charged"][1],
                     same, dominated])
    # End-to-end: Algorithm 3 under both fidelities.
    seq = random_graphic_sequence(24, 0.35, seed=6)
    results = {}
    for fidelity in ("full", "charged"):
        net = make_net(24, seed=37)
        demands = dict(zip(net.node_ids, seq))
        results[fidelity] = realize_degree_sequence(
            net, demands, sort_fidelity=fidelity
        )
    same_edges = results["full"].edges == results["charged"].edges
    ok &= same_edges
    rows.append(["Algorithm 3 n=24", results["full"].stats.rounds,
                 results["charged"].stats.rounds, same_edges,
                 results["charged"].stats.rounds
                 >= results["full"].stats.simulated_rounds])
    return Experiment(
        exp_id="X-A2",
        claim="ablation: charged-mode sorting is output-identical to the "
        "full simulation and conservatively over-charges rounds",
        headers=["workload", "full rounds", "charged rounds",
                 "identical output", "charged >= full"],
        rows=rows,
        shape_holds=ok,
        notes="Justifies using charged sorting in large-n scaling sweeps: "
        "it can only overstate, never understate, round costs.",
    )


def test_ablation_fidelity(benchmark):
    def run():
        return sort_both(64, seed=38)["charged"][1]

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
