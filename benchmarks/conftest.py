"""Benchmark harness plumbing.

Each ``bench_*.py`` module exposes ``experiment()`` returning an
:class:`common.Experiment` (headers + rows + a shape verdict); the pytest
benchmarks time one representative configuration and assert the verdict,
while ``run_experiments.py`` executes every module's full sweep and
renders EXPERIMENTS.md.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.setrecursionlimit(200_000)
