"""T-14: tree realization in O(log^3 n) rounds (Algorithm 4)."""

from common import Experiment, flat_or_decreasing, log2n, make_net
from repro.core.tree_realization import realize_tree
from repro.validation import check_tree
from repro.workloads import (
    caterpillar_sequence,
    random_tree_sequence,
    star_sequence,
)


def measure(seq, seed: int = 22):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = realize_tree(net, demands, variant="max_diameter")
    assert result.realized
    valid = check_tree(result.edges, list(net.node_ids)) and (
        result.realized_degrees == demands
    )
    return result, valid


def experiment() -> Experiment:
    rows, ratios = [], []
    ok = True
    for n in (16, 32, 64, 128, 256):
        seq = random_tree_sequence(n, seed=n)
        result, valid = measure(seq)
        ok &= valid
        ratio = result.stats.rounds / log2n(n) ** 3
        ratios.append(ratio)
        rows.append([f"random tree n={n}", result.stats.rounds,
                     f"{ratio:.2f}", result.diameter, valid])
    for label, seq in (
        ("star n=64", star_sequence(64)),
        ("caterpillar n=64", caterpillar_sequence(64)),
    ):
        result, valid = measure(seq)
        ok &= valid
        rows.append([label, result.stats.rounds,
                     f"{result.stats.rounds / log2n(64) ** 3:.2f}",
                     result.diameter, valid])
    shape = ok and flat_or_decreasing(ratios)
    return Experiment(
        exp_id="T-14",
        claim="implicit tree realization in O(log^3 n) rounds (sort-dominated)",
        headers=["workload", "rounds", "rounds/log2(n)^3", "diameter", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="One sort + prefix sums + claim-collect + range multicast; "
        "rounds/log^3 n is flat-to-decreasing.",
    )


def test_thm14_tree(benchmark):
    def run():
        seq = random_tree_sequence(128, seed=5)
        return measure(seq, seed=23)[0].stats.rounds

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rounds <= 10 * log2n(128) ** 3
    exp = experiment()
    assert exp.shape_holds, exp.render()
