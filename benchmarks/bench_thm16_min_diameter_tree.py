"""T-16: minimum-diameter tree realization (Algorithm 5, Lemma 15).

Optimality validated two ways: against exhaustive Prüfer enumeration for
n <= 9, and against Algorithm 4's caterpillar (which maximizes diameter)
for larger n.
"""

import random

from common import Experiment, make_net
from repro.core.tree_realization import realize_tree
from repro.sequential import min_tree_diameter_bruteforce
from repro.validation import check_tree
from repro.workloads import (
    balanced_tree_sequence,
    path_sequence,
    random_tree_sequence,
    star_sequence,
)


def realize(seq, variant, seed=24):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = realize_tree(net, demands, variant=variant)
    assert result.realized
    assert check_tree(result.edges, list(net.node_ids))
    return result


def experiment() -> Experiment:
    rows = []
    ok = True

    # Exact optimality, small n (brute force over all Prüfer sequences).
    rng = random.Random(0)
    for trial in range(6):
        n = rng.randrange(5, 9)
        seq = random_tree_sequence(n, seed=trial)
        result = realize(seq, "min_diameter")
        best = min_tree_diameter_bruteforce(seq)
        ok &= result.diameter == best
        rows.append([f"random n={n} #{trial}", result.diameter, best,
                     "exhaustive", result.diameter == best])

    # Structural extremes.
    for label, seq, expect in (
        ("star n=32", star_sequence(32), 2),
        ("path n=32", path_sequence(32), 31),
        ("balanced binary n=31", balanced_tree_sequence(31), None),
    ):
        result = realize(seq, "min_diameter")
        if expect is not None:
            ok &= result.diameter == expect
        cat = realize(seq, "max_diameter")
        ok &= result.diameter <= cat.diameter
        rows.append([label, result.diameter,
                     expect if expect is not None else f"<= Alg4 ({cat.diameter})",
                     "structural", result.diameter <= cat.diameter])

    # Dominance over Algorithm 4 on larger random inputs.
    for n in (48, 96):
        seq = random_tree_sequence(n, seed=n)
        greedy = realize(seq, "min_diameter")
        cat = realize(seq, "max_diameter")
        ok &= greedy.diameter <= cat.diameter
        rows.append([f"random n={n}", greedy.diameter,
                     f"<= Alg4 ({cat.diameter})", "dominance",
                     greedy.diameter <= cat.diameter])

    return Experiment(
        exp_id="T-16",
        claim="Algorithm 5 realizes the minimum possible tree diameter",
        headers=["workload", "T_G diameter", "optimum / reference",
                 "oracle", "optimal"],
        rows=rows,
        shape_holds=ok,
        notes="Matches exhaustive enumeration on every small instance and "
        "never exceeds the caterpillar's diameter.",
    )


def test_thm16_min_diameter_tree(benchmark):
    def run():
        seq = random_tree_sequence(64, seed=7)
        return realize(seq, "min_diameter", seed=25).diameter

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
