"""X-SERVE — socket serve front end: sustained req/sec + latency tails.

Methodology: the same deterministic mixed service traffic as X-SVC
(``TOTAL`` requests = ``len(DISTINCT)`` distinct realization requests
across five workload kinds at n ∈ {48, 96}, each recurring ``REPEAT``
times, deterministic shuffle) is driven through three front ends, each
on a *fresh* executor (so every mode pays the same cache misses):

``serve_direct``
    The in-process baseline: ``executor.handle()`` per request on the
    calling thread — no sockets, no event loop.  This is the ceiling the
    socket stack is measured against.

``serve_closed_loop``
    ``CONNECTIONS`` concurrent TCP clients on a live
    :class:`~repro.service.server.SocketServer` (ephemeral port, real
    loopback sockets).  Closed-loop arrival process: each client sends
    one request and waits for its response before sending the next —
    per-request latency is the client-observed send→response time.

``serve_pipelined``
    The same clients and shards, open-loop burst arrival: every client
    writes its whole shard up front, then reads responses (in-order per
    connection).  Latency is the sojourn time from burst start to each
    response — queueing included, the honest tail under load.

Responses are asserted field-identical across all three modes per
``request_id`` (the executor's bit-identical guarantees must hold over
the socket).  The summed rounds/messages and the request counts are the
regression-guard invariants; ``requests_per_sec`` is guarded with the
standard throughput tolerance.  The acceptance gate is *efficiency*:
the slower socket mode must sustain at least
``TARGET_MIN_EFFICIENCY`` × the direct throughput (the socket, JSON and
event-loop overhead must not dominate realization work), with zero
admission rejections at the default-sized window.  Wall-clock timing:
the event loop and client coroutines share the process.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from common import Experiment
from repro.service import (
    BatchExecutor,
    LatencyRecorder,
    NetworkPool,
    RealizationRequest,
    SocketServer,
    default_registry,
)

#: Acceptance: min(socket-mode req/s) / direct req/s.
TARGET_MIN_EFFICIENCY = 0.5

#: Distinct requests: (kind, scenario, n, seed, extra request fields) —
#: five workload kinds over two deployment identities, X-SVC's shape at
#: socket-benchmark scale.
DISTINCT = [
    ("degree_implicit", "random_graphic", 48, 3, {}),
    ("degree_envelope", "near_graphic", 48, 3, {}),
    ("tree", "tree_random", 48, 3, {}),
    ("connectivity", "rho_uniform", 48, 3, {}),
    ("approximate", "regular", 48, 3, {}),
    ("degree_implicit", "power_law", 96, 5, {}),
    ("tree", "tree_caterpillar", 96, 5, {}),
    ("connectivity", "rho_ranked", 96, 5, {}),
]

#: Each distinct request recurs this many times (service traffic
#: repeats itself; the response cache is part of the measured stack).
REPEAT = 5

TOTAL = len(DISTINCT) * REPEAT

#: Concurrent client connections for the socket modes.
CONNECTIONS = 4

#: The admission window under test (the CLI default) — large enough
#: that this load must see zero rejections, which is asserted.
WINDOW = 256


def build_traffic():
    """The deterministic request mix (shuffled, unique request_ids)."""
    requests = []
    for rep in range(REPEAT):
        for kind, scenario, n, seed, extra in DISTINCT:
            requests.append(
                RealizationRequest(
                    kind=kind,
                    scenario=scenario,
                    n=n,
                    seed=seed,
                    request_id=f"{kind}-{scenario}-{n}-r{rep}",
                    **extra,
                ).validate()
            )
    random.Random(7).shuffle(requests)
    return requests


def _fresh_executor():
    return BatchExecutor(pool=NetworkPool(), cache_responses=True,
                         registry=default_registry())


def _strip(row):
    """Response fields minus identity and measurement volatiles."""
    return {k: v for k, v in row.items()
            if k not in ("request_id", "cached", "elapsed_sec")}


async def _closed_loop_client(port, requests, recorder):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    rows = []
    for request in requests:
        payload = (json.dumps(request.to_dict()) + "\n").encode()
        start = time.perf_counter()
        writer.write(payload)
        await writer.drain()
        raw = await reader.readline()
        recorder.record(time.perf_counter() - start)
        rows.append(json.loads(raw))
    writer.close()
    await writer.wait_closed()
    return rows


async def _pipelined_client(port, requests, recorder):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    start = time.perf_counter()
    for request in requests:
        writer.write((json.dumps(request.to_dict()) + "\n").encode())
    await writer.drain()
    rows = []
    for _ in requests:
        raw = await reader.readline()
        # Sojourn since the burst began: queueing is part of the tail.
        recorder.record(time.perf_counter() - start)
        rows.append(json.loads(raw))
    writer.close()
    await writer.wait_closed()
    return rows


async def _drive_socket(executor, traffic, client):
    """One socket run: CONNECTIONS clients over a live server."""
    server = await SocketServer(executor, port=0, window=WINDOW).start()
    shards = [traffic[i::CONNECTIONS] for i in range(CONNECTIONS)]
    recorder = LatencyRecorder()
    start = time.perf_counter()
    rows_per_client = await asyncio.gather(
        *[client(server.port, shard, recorder) for shard in shards]
    )
    elapsed = time.perf_counter() - start
    rejected = server.rejected
    server.drain()
    await server.wait_done()
    rows = [row for rows in rows_per_client for row in rows]
    return elapsed, rows, recorder, rejected


def _run_direct(traffic):
    executor = _fresh_executor()
    recorder = LatencyRecorder()
    rows = []
    start = time.perf_counter()
    for request in traffic:
        began = time.perf_counter()
        response = executor.handle(request)
        recorder.record(time.perf_counter() - began)
        rows.append(response.to_dict())
    elapsed = time.perf_counter() - start
    executor.close()
    return elapsed, rows, recorder, 0


def _run_mode(mode, traffic):
    if mode == "serve_direct":
        return _run_direct(traffic)
    client = (_closed_loop_client if mode == "serve_closed_loop"
              else _pipelined_client)
    executor = _fresh_executor()
    try:
        return asyncio.run(_drive_socket(executor, traffic, client))
    finally:
        executor.close()


MODES = ("serve_direct", "serve_closed_loop", "serve_pipelined")


def measure(reps: int = 2):
    """Best-of-``reps`` wall-clock runs of each front end.

    Every rep of every mode runs the identical traffic on a fresh
    executor; responses are asserted field-identical per request_id
    across all runs, and the best rep's latency percentiles are kept.
    """
    traffic = build_traffic()
    canonical = None  # request_id -> stripped response of the first run
    best = {mode: None for mode in MODES}
    for _ in range(reps):
        for mode in MODES:
            elapsed, rows, recorder, rejected = _run_mode(mode, traffic)
            assert len(rows) == TOTAL
            assert rejected == 0, (
                f"{mode}: {rejected} admission rejections at window "
                f"{WINDOW} — the default window must absorb this load"
            )
            by_id = {row["request_id"]: _strip(row) for row in rows}
            if canonical is None:
                canonical = by_id
            else:
                assert by_id == canonical, (
                    f"{mode} changed a response — the socket front end "
                    "must be answer-preserving"
                )
            if best[mode] is None or elapsed < best[mode][0]:
                best[mode] = (elapsed, recorder)

    total_rounds = sum(row["rounds"] for row in canonical.values())
    total_messages = sum(row["messages"] for row in canonical.values())
    results = []
    for mode in MODES:
        elapsed, recorder = best[mode]
        latency = recorder.snapshot()
        results.append(
            {
                "workload": mode,
                "n": 0,  # mixed traffic (n in {48, 96})
                "requests": TOTAL,
                "distinct": len(DISTINCT),
                "connections": 0 if mode == "serve_direct" else CONNECTIONS,
                "window": WINDOW,
                "rounds": total_rounds,
                "messages": total_messages,
                "rejected": 0,
                "elapsed_sec": round(elapsed, 4),
                "requests_per_sec": round(TOTAL / elapsed, 2),
                "p50_ms": latency["p50_ms"],
                "p99_ms": latency["p99_ms"],
            }
        )
    return results


_results_cache = {}


def bench_results(reps: int = 2):
    """The BENCH_serve.json payload rows; cached per process."""
    if reps not in _results_cache:
        _results_cache[reps] = measure(reps=reps)
    return _results_cache[reps]


def efficiency(results=None) -> float:
    """min(socket req/s) / direct req/s — the acceptance ratio."""
    results = results or bench_results()
    by_mode = {r["workload"]: r for r in results}
    direct = by_mode["serve_direct"]["requests_per_sec"]
    slowest = min(
        by_mode["serve_closed_loop"]["requests_per_sec"],
        by_mode["serve_pipelined"]["requests_per_sec"],
    )
    return round(slowest / direct, 2)


def experiment() -> Experiment:
    results = bench_results()
    rows = [
        [
            r["workload"],
            r["requests"],
            r["connections"] or "—",
            f"{r['elapsed_sec']:.3f}s",
            f"{r['requests_per_sec']:,}",
            f"{r['p50_ms']:.1f}",
            f"{r['p99_ms']:.1f}",
            r["rejected"],
        ]
        for r in results
    ]
    ratio = efficiency(results)
    return Experiment(
        exp_id="X-SERVE",
        claim="socket front end sustains near-direct throughput for many clients",
        headers=[
            "mode", "requests", "conns", "best time", "req/s",
            "p50 ms", "p99 ms", "rejected",
        ],
        rows=rows,
        shape_holds=ratio >= TARGET_MIN_EFFICIENCY,
        notes=(
            f"The X-SVC mixed traffic at socket scale ({TOTAL} requests = "
            f"{len(DISTINCT)} distinct x{REPEAT}, n in {{48, 96}}) served "
            "three ways on fresh executors: in-process handle() calls "
            f"(direct), and {CONNECTIONS} concurrent TCP clients in "
            "closed-loop (request-response) and pipelined (burst) arrival "
            "processes against a live SocketServer.  Responses asserted "
            "field-identical per request_id across all modes and reps; "
            f"zero rejections at window {WINDOW}.  Closed-loop latency is "
            "client-observed per request; pipelined latency is sojourn "
            "time from burst start (queueing included).  Slowest-socket/"
            f"direct throughput ratio {ratio:.2f}x "
            f"(target >= {TARGET_MIN_EFFICIENCY}x)."
        ),
    )


def test_socket_serve_smoke(benchmark):
    """Smoke-scale socket drive: answers preserved over the wire."""
    traffic = build_traffic()[:8]
    _, direct_rows, _, _ = _run_direct(traffic)
    direct = {row["request_id"]: _strip(row) for row in direct_rows}

    def run():
        executor = _fresh_executor()
        try:
            return asyncio.run(
                _drive_socket(executor, traffic, _pipelined_client)
            )
        finally:
            executor.close()

    _, rows, _, rejected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rejected == 0
    assert {row["request_id"]: _strip(row) for row in rows} == direct
