"""X-SERVE — socket serve front end: sustained req/sec + latency tails.

Methodology: the same deterministic mixed service traffic as X-SVC
(``TOTAL`` requests = ``len(DISTINCT)`` distinct realization requests
across five workload kinds at n ∈ {48, 96}, each recurring ``REPEAT``
times, deterministic shuffle) is driven through three front ends, each
on a *fresh* executor (so every mode pays the same cache misses):

``serve_direct``
    The in-process baseline: ``executor.handle()`` per request on the
    calling thread — no sockets, no event loop.  This is the ceiling the
    socket stack is measured against.

``serve_closed_loop``
    ``CONNECTIONS`` concurrent TCP clients on a live
    :class:`~repro.service.server.SocketServer` (ephemeral port, real
    loopback sockets).  Closed-loop arrival process: each client sends
    one request and waits for its response before sending the next —
    per-request latency is the client-observed send→response time.

``serve_pipelined``
    The same clients and shards, open-loop burst arrival: every client
    writes its whole shard up front, then reads responses (in-order per
    connection).  Latency is the sojourn time from burst start to each
    response — queueing included, the honest tail under load.

Responses are asserted field-identical across all three modes per
``request_id`` (the executor's bit-identical guarantees must hold over
the socket).  The summed rounds/messages and the request counts are the
regression-guard invariants; ``requests_per_sec`` is guarded with the
standard throughput tolerance.  The acceptance gate is *efficiency*:
the slower socket mode must sustain at least
``TARGET_MIN_EFFICIENCY`` × the direct throughput (the socket, JSON and
event-loop overhead must not dominate realization work), with zero
admission rejections at the default-sized window.  Wall-clock timing:
the event loop and client coroutines share the process.

A fourth row, ``serve_chaos``, replays the serve stack under injected
faults (seeded :class:`~repro.service.faults.FaultPlan`): a hung worker
with a request deadline (the watchdog must answer a typed
``WORKER_TIMEOUT``) and a crashing worker (typed ``WORKER_CRASHED``)
ride alongside clean traffic on a processes-mode executor; every
surviving response is asserted field-identical to a clean sequential
drain, and the row records typed-error counts plus recovery overhead.
The chaos run now collects request-scoped traces too: the reassembled
span trees for both faulty requests are asserted to carry their typed
error codes and crash-recovery attempts.  Run standalone with
``python benchmarks/bench_serve.py --chaos``.

A fifth row, ``serve_trace_overhead``, prices the observability layer:
the direct drive runs three interleaved ways on fresh executors —
*baseline* (the span/stage plumbing stubbed out at the instance, the
closest stand-in for the pre-instrumentation executor), *disabled*
(the shipped default, ``tracer=None``), and *traced* (a live
:class:`~repro.obs.Tracer` collecting every request tree).  The row
records all three throughputs; ``disabled_overhead_pct`` must stay
under ``TARGET_MAX_DISABLED_OVERHEAD_PCT`` (tracing you did not turn
on may not tax the serve path), which ``run_experiments.py --check``
gates on every fresh run.  Run standalone with
``python benchmarks/bench_serve.py --trace-overhead``.

A sixth row, ``serve_durable``, prices the write-ahead request journal
the same way: the direct drive (every request carrying an
``idempotency_key``) runs journal-disabled and journaled at each fsync
policy (``never``/``batch``/``always``) on fresh executors and fresh
journal files, interleaved per rep with paired overheads.  Responses
are asserted field-identical across all variants (durability must be
answer-preserving) and ``durable_overhead_pct`` (the shipped
``fsync=batch`` default vs journal-off) is gated at
``TARGET_MAX_DURABLE_OVERHEAD_PCT`` by ``run_experiments.py --check``.
The closed-loop socket client also honors the deterministic
``retry_after_ms`` hint on ``ADMISSION_REJECTED`` envelopes (dormant at
the benchmark window, where zero rejections are asserted).  Run
standalone with ``python benchmarks/bench_serve.py --durable``.
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import random
import time

from common import Experiment
from repro.service import (
    BatchExecutor,
    FaultPlan,
    FaultRule,
    LatencyRecorder,
    NetworkPool,
    RealizationRequest,
    SocketServer,
    Tracer,
    default_registry,
)
from repro.service import faults

#: Acceptance: min(socket-mode req/s) / direct req/s.
TARGET_MIN_EFFICIENCY = 0.5

#: Acceptance: the serve path with tracing *disabled* (the default) may
#: cost at most this much throughput versus the stubbed-out baseline.
TARGET_MAX_DISABLED_OVERHEAD_PCT = 5.0

#: Distinct requests: (kind, scenario, n, seed, extra request fields) —
#: five workload kinds over two deployment identities, X-SVC's shape at
#: socket-benchmark scale.
DISTINCT = [
    ("degree_implicit", "random_graphic", 48, 3, {}),
    ("degree_envelope", "near_graphic", 48, 3, {}),
    ("tree", "tree_random", 48, 3, {}),
    ("connectivity", "rho_uniform", 48, 3, {}),
    ("approximate", "regular", 48, 3, {}),
    ("degree_implicit", "power_law", 96, 5, {}),
    ("tree", "tree_caterpillar", 96, 5, {}),
    ("connectivity", "rho_ranked", 96, 5, {}),
]

#: Each distinct request recurs this many times (service traffic
#: repeats itself; the response cache is part of the measured stack).
REPEAT = 5

TOTAL = len(DISTINCT) * REPEAT

#: Concurrent client connections for the socket modes.
CONNECTIONS = 4

#: The admission window under test (the CLI default) — large enough
#: that this load must see zero rejections, which is asserted.
WINDOW = 256


def build_traffic():
    """The deterministic request mix (shuffled, unique request_ids)."""
    requests = []
    for rep in range(REPEAT):
        for kind, scenario, n, seed, extra in DISTINCT:
            requests.append(
                RealizationRequest(
                    kind=kind,
                    scenario=scenario,
                    n=n,
                    seed=seed,
                    request_id=f"{kind}-{scenario}-{n}-r{rep}",
                    **extra,
                ).validate()
            )
    random.Random(7).shuffle(requests)
    return requests


def _fresh_executor():
    return BatchExecutor(pool=NetworkPool(), cache_responses=True,
                         registry=default_registry())


def _strip(row):
    """Response fields minus identity and measurement volatiles."""
    return {k: v for k, v in row.items()
            if k not in ("request_id", "cached", "elapsed_sec")}


async def _closed_loop_client(port, requests, recorder):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    rows = []
    for request in requests:
        payload = (json.dumps(request.to_dict()) + "\n").encode()
        while True:
            start = time.perf_counter()
            writer.write(payload)
            await writer.drain()
            raw = await reader.readline()
            row = json.loads(raw)
            if row.get("error_code") == "ADMISSION_REJECTED":
                # Pace the resubmission by the server's deterministic
                # hint instead of hammering a full window.  Dormant at
                # the benchmark window (zero rejections are asserted),
                # live under operator-shrunk windows.
                hint = (row.get("detail") or {}).get("retry_after_ms", 1)
                await asyncio.sleep(hint / 1000.0)
                continue
            recorder.record(time.perf_counter() - start)
            rows.append(row)
            break
    writer.close()
    await writer.wait_closed()
    return rows


async def _pipelined_client(port, requests, recorder):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    start = time.perf_counter()
    for request in requests:
        writer.write((json.dumps(request.to_dict()) + "\n").encode())
    await writer.drain()
    rows = []
    for _ in requests:
        raw = await reader.readline()
        # Sojourn since the burst began: queueing is part of the tail.
        recorder.record(time.perf_counter() - start)
        rows.append(json.loads(raw))
    writer.close()
    await writer.wait_closed()
    return rows


async def _drive_socket(executor, traffic, client):
    """One socket run: CONNECTIONS clients over a live server."""
    server = await SocketServer(executor, port=0, window=WINDOW).start()
    shards = [traffic[i::CONNECTIONS] for i in range(CONNECTIONS)]
    recorder = LatencyRecorder()
    start = time.perf_counter()
    rows_per_client = await asyncio.gather(
        *[client(server.port, shard, recorder) for shard in shards]
    )
    elapsed = time.perf_counter() - start
    rejected = server.rejected
    server.drain()
    await server.wait_done()
    rows = [row for rows in rows_per_client for row in rows]
    return elapsed, rows, recorder, rejected


def _run_direct(traffic):
    executor = _fresh_executor()
    recorder = LatencyRecorder()
    rows = []
    start = time.perf_counter()
    for request in traffic:
        began = time.perf_counter()
        response = executor.handle(request)
        recorder.record(time.perf_counter() - began)
        rows.append(response.to_dict())
    elapsed = time.perf_counter() - start
    executor.close()
    return elapsed, rows, recorder, 0


def _run_mode(mode, traffic):
    if mode == "serve_direct":
        return _run_direct(traffic)
    client = (_closed_loop_client if mode == "serve_closed_loop"
              else _pipelined_client)
    executor = _fresh_executor()
    try:
        return asyncio.run(_drive_socket(executor, traffic, client))
    finally:
        executor.close()


MODES = ("serve_direct", "serve_closed_loop", "serve_pipelined")


def measure(reps: int = 2):
    """Best-of-``reps`` wall-clock runs of each front end.

    Every rep of every mode runs the identical traffic on a fresh
    executor; responses are asserted field-identical per request_id
    across all runs, and the best rep's latency percentiles are kept.
    """
    traffic = build_traffic()
    canonical = None  # request_id -> stripped response of the first run
    best = {mode: None for mode in MODES}
    for _ in range(reps):
        for mode in MODES:
            elapsed, rows, recorder, rejected = _run_mode(mode, traffic)
            assert len(rows) == TOTAL
            assert rejected == 0, (
                f"{mode}: {rejected} admission rejections at window "
                f"{WINDOW} — the default window must absorb this load"
            )
            by_id = {row["request_id"]: _strip(row) for row in rows}
            if canonical is None:
                canonical = by_id
            else:
                assert by_id == canonical, (
                    f"{mode} changed a response — the socket front end "
                    "must be answer-preserving"
                )
            if best[mode] is None or elapsed < best[mode][0]:
                best[mode] = (elapsed, recorder)

    total_rounds = sum(row["rounds"] for row in canonical.values())
    total_messages = sum(row["messages"] for row in canonical.values())
    results = []
    for mode in MODES:
        elapsed, recorder = best[mode]
        latency = recorder.snapshot()
        results.append(
            {
                "workload": mode,
                "n": 0,  # mixed traffic (n in {48, 96})
                "requests": TOTAL,
                "distinct": len(DISTINCT),
                "connections": 0 if mode == "serve_direct" else CONNECTIONS,
                "window": WINDOW,
                "rounds": total_rounds,
                "messages": total_messages,
                "rejected": 0,
                "elapsed_sec": round(elapsed, 4),
                "requests_per_sec": round(TOTAL / elapsed, 2),
                "p50_ms": latency["p50_ms"],
                "p99_ms": latency["p99_ms"],
            }
        )
    return results


# -------------------------------------------------------------------- #
# Chaos drive: the same serve stack under injected worker faults        #
# -------------------------------------------------------------------- #

#: Clean requests riding alongside the two faulty ones.
CHAOS_CLEAN = 12

#: Client connections for the chaos drive (one per faulty request, so
#: each fault shares a connection with surviving traffic).
CHAOS_CONNECTIONS = 2

#: Deadline on the hung request — the watchdog must convert the hang
#: into a typed WORKER_TIMEOUT shortly after this expires.
CHAOS_DEADLINE_MS = 600


def chaos_plan() -> FaultPlan:
    """The seeded fault plan: one hung worker, one crashing worker."""
    return FaultPlan(
        [
            FaultRule(action="hang", request_ids=("chaos-hang",)),
            FaultRule(action="crash", request_ids=("chaos-crash",)),
        ],
        seed=7,
    )


def _chaos_traffic():
    clean = build_traffic()[:CHAOS_CLEAN]
    hang = RealizationRequest(
        kind="degree_implicit", scenario="regular", n=48, seed=11,
        request_id="chaos-hang", deadline_ms=CHAOS_DEADLINE_MS,
    ).validate()
    crash = RealizationRequest(
        kind="tree", scenario="tree_random", n=48, seed=11,
        request_id="chaos-crash",
    ).validate()
    return clean, hang, crash


async def _drive_chaos(executor, hang, crash, clean):
    """Two connections: hang + half the clean traffic, then the crash.

    The crash is only sent once the hung request has resolved: a pool
    break while the hung request is in flight would consume its retry
    budget and race its typed outcome (WORKER_TIMEOUT vs the co-victim
    path's WORKER_CRASHED).  Serializing the two faults keeps both
    outcomes deterministic while clean traffic still rides concurrently
    with each fault.
    """
    server = await SocketServer(executor, port=0, window=WINDOW).start()
    hang_resolved = asyncio.Event()

    async def _burst(writer, batch):
        for request in batch:
            writer.write((json.dumps(request.to_dict()) + "\n").encode())
        await writer.drain()

    async def conn_a():
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        batch = [hang] + clean[0::2]
        await _burst(writer, batch)
        got = [json.loads(await reader.readline()) for _ in batch]
        hang_resolved.set()
        writer.close()
        await writer.wait_closed()
        return got

    async def conn_b():
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        batch = clean[1::2]
        await _burst(writer, batch)
        got = [json.loads(await reader.readline()) for _ in batch]
        await hang_resolved.wait()
        await _burst(writer, [crash])
        got.append(json.loads(await reader.readline()))
        writer.close()
        await writer.wait_closed()
        return got

    start = time.perf_counter()
    rows_a, rows_b = await asyncio.gather(conn_a(), conn_b())
    elapsed = time.perf_counter() - start
    rejected = server.rejected
    server.drain()
    await server.wait_done()
    return elapsed, rows_a + rows_b, rejected


def measure_chaos():
    """One chaos run: hang + crash injected into live socket traffic.

    A hung worker (deadline ``CHAOS_DEADLINE_MS``) and a crashing worker
    are injected into a processes-mode serve alongside ``CHAOS_CLEAN``
    clean requests on ``CHAOS_CONNECTIONS`` pipelined connections.  The
    row records the typed-error counts and the recovery overhead versus
    a clean in-process drain of the same surviving requests; every
    surviving answer is asserted field-identical to that clean drain
    (fault recovery must not change answers), and the summed
    rounds/messages over survivors are the regression-guard invariants.
    """
    clean, hang, crash = _chaos_traffic()
    # Clean baseline first (no plan installed): the sequential in-process
    # answers the chaos survivors must reproduce bit for bit.
    clean_elapsed, clean_rows, _, _ = _run_direct(clean)
    canonical = {row["request_id"]: _strip(row) for row in clean_rows}

    previous = os.environ.get(faults.ENV_VAR)
    os.environ[faults.ENV_VAR] = chaos_plan().to_json()
    faults.clear()
    try:
        tracer = Tracer(max_traces=64)
        executor = BatchExecutor(
            pool=NetworkPool(), cache_responses=True,
            registry=default_registry(), mode="processes", workers=2,
            tracer=tracer,
        )
        try:
            # Prime the pool before any socket exists (fork inherits fds).
            assert executor.submit(clean[0]).result(timeout=300).verdict == (
                "REALIZED"
            )
            elapsed, rows, rejected = asyncio.run(
                _drive_chaos(executor, hang, crash, clean)
            )
            stats = executor.stats()
            traces = tracer.drain()
        finally:
            executor.close()
    finally:
        if previous is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = previous
        faults.clear()

    assert rejected == 0
    by_id = {row["request_id"]: row for row in rows}
    assert by_id["chaos-hang"].get("error_code") == "WORKER_TIMEOUT", (
        f"hung request not watchdogged: {by_id['chaos-hang']}"
    )
    assert by_id["chaos-crash"].get("error_code") == "WORKER_CRASHED", (
        f"crashing request not typed: {by_id['chaos-crash']}"
    )
    ok = {
        rid: _strip(row)
        for rid, row in by_id.items()
        if row.get("ok")  # REALIZED / APPROXIMATED — any successful verdict
    }
    assert ok == canonical, (
        "chaos recovery changed a surviving answer — fault handling must "
        "be answer-preserving"
    )
    assert stats["worker_timeouts"] >= 1

    # The chaos traces: one reassembled tree per admitted request (the
    # priming request included), faulty roots tagged with their typed
    # error codes and crash-recovery attempts, and at least one clean
    # tree spanning parent admission -> worker rounds (the process
    # boundary must not drop the worker-side subtree).
    by_trace_id = {t.tags.get("request_id"): t for t in traces}
    assert len(traces) == CHAOS_CLEAN + 3, (
        f"expected {CHAOS_CLEAN + 3} traces, drained {len(traces)}"
    )
    hang_trace = by_trace_id["chaos-hang"]
    assert hang_trace.tags.get("error_code") == "WORKER_TIMEOUT"
    assert hang_trace.find("crash_recovery") is not None
    crash_trace = by_trace_id["chaos-crash"]
    assert crash_trace.tags.get("error_code") == "WORKER_CRASHED"
    assert crash_trace.find("crash_recovery") is not None
    assert any(t.find("worker") is not None for t in traces), (
        "no trace reassembled a worker-side subtree"
    )
    return {
        "workload": "serve_chaos",
        "n": 0,  # mixed traffic (n in {48, 96})
        "requests": CHAOS_CLEAN + 2,
        "faults": 2,
        "timeouts": 1,
        "crashes": 1,
        "ok": CHAOS_CLEAN,
        "connections": CHAOS_CONNECTIONS,
        "window": WINDOW,
        "rounds": sum(row["rounds"] for row in ok.values()),
        "messages": sum(row["messages"] for row in ok.values()),
        "rejected": 0,
        "elapsed_sec": round(elapsed, 4),
        "clean_elapsed_sec": round(clean_elapsed, 4),
        "recovery_overhead_sec": round(max(0.0, elapsed - clean_elapsed), 4),
        "traces": len(traces),
        "traced_faults": 2,
    }


# -------------------------------------------------------------------- #
# Tracing overhead: the observability layer's price at the serve front  #
# -------------------------------------------------------------------- #

#: Interleaved best-of reps for the three overhead variants.
TRACE_OVERHEAD_REPS = 5


def _stub_observability(executor):
    """Instance-stub the per-request span/stage plumbing.

    The closest available stand-in for the pre-instrumentation
    executor: admission opens no span and the stage histograms see
    nothing, while everything else (cache, pool, counters) runs as
    shipped.  The *disabled* variant is then measured against this.
    """
    executor._start_span = lambda request: None
    executor._observe_stages = lambda total, response: None
    return executor


def _drive_direct(executor, traffic):
    """One direct drive, CPU-clocked with GC paused.

    The overhead deltas under test are a few percent of a ~quarter-
    second drive; wall-clock jitter and GC pauses at that scale dwarf
    the signal, so this times like `bench_protocol_wallclock` does —
    `process_time` with collection deferred to the gaps between reps.
    """
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        for request in traffic:
            response = executor.handle(request)
            assert response.ok, response
        return time.process_time() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def measure_trace_overhead(reps: int = TRACE_OVERHEAD_REPS):
    """The ``serve_trace_overhead`` row.

    Three variants of the direct drive, interleaved per rep on fresh
    executors (every variant pays the same cache misses):

    * ``baseline_rps`` — span/stage plumbing stubbed out;
    * ``requests_per_sec`` — the shipped default (``tracer=None``);
    * ``traced_rps`` — a live :class:`Tracer` collecting every tree.

    ``disabled_overhead_pct`` (default vs baseline) is the acceptance
    number: instrumentation you did not enable must be ~free.
    ``tracing_overhead_pct`` (traced vs default) is recorded honestly
    but not gated — collecting spans is allowed to cost something.

    The overhead percentages are *paired within a rep* and the minimum
    across reps is kept: the instrumentation cost is a constant of the
    code, while host noise (frequency scaling, a neighbour stealing the
    core mid-run) only ever inflates one side of an unpaired
    comparison.  Any single quiet rep bounds the true overhead from
    above.
    """
    traffic = build_traffic()
    timings = {"baseline": [], "disabled": [], "traced": []}
    traced_count = 0
    # One untimed pass on a throwaway executor absorbs import/alloc
    # warm-up so the first timed variant isn't penalized.
    warmup = _fresh_executor()
    try:
        _drive_direct(warmup, traffic)
    finally:
        warmup.close()
    for _ in range(reps):
        for variant in ("baseline", "disabled", "traced"):
            if variant == "traced":
                tracer = Tracer(max_traces=2 * TOTAL)
                executor = BatchExecutor(
                    pool=NetworkPool(), cache_responses=True,
                    registry=default_registry(), tracer=tracer,
                )
            else:
                tracer = None
                executor = _fresh_executor()
                if variant == "baseline":
                    _stub_observability(executor)
            try:
                elapsed = _drive_direct(executor, traffic)
            finally:
                executor.close()
            if tracer is not None:
                traced_count = len(tracer.drain())
                assert traced_count == TOTAL
            timings[variant].append(elapsed)

    best = {variant: min(series) for variant, series in timings.items()}
    baseline_rps = TOTAL / best["baseline"]
    disabled_rps = TOTAL / best["disabled"]
    traced_rps = TOTAL / best["traced"]
    disabled_overhead = min(
        d / b - 1.0
        for b, d in zip(timings["baseline"], timings["disabled"])
    )
    tracing_overhead = min(
        t / d - 1.0
        for d, t in zip(timings["disabled"], timings["traced"])
    )
    return {
        "workload": "serve_trace_overhead",
        "n": 0,  # mixed traffic (n in {48, 96})
        "requests": TOTAL,
        "distinct": len(DISTINCT),
        "connections": 0,
        "window": WINDOW,
        "rejected": 0,
        "traces": traced_count,
        "elapsed_sec": round(best["disabled"], 4),
        "baseline_rps": round(baseline_rps, 2),
        "requests_per_sec": round(disabled_rps, 2),
        "traced_rps": round(traced_rps, 2),
        "disabled_overhead_pct": round(disabled_overhead * 100.0, 2),
        "tracing_overhead_pct": round(tracing_overhead * 100.0, 2),
    }


# -------------------------------------------------------------------- #
# Durability overhead: the write-ahead journal's price on the hot path  #
# -------------------------------------------------------------------- #

#: Acceptance: the journaled serve path at the shipped default policy
#: (``fsync=batch``) may cost at most this much throughput versus the
#: journal-disabled drive.
TARGET_MAX_DURABLE_OVERHEAD_PCT = 10.0

#: Interleaved paired reps for the four durability variants.
DURABLE_REPS = 3

DURABLE_VARIANTS = ("off", "never", "batch", "always")


def _durable_traffic():
    """The standard mix, every request carrying an idempotency key —
    the representative durable workload (keys are what clients that
    care about exactly-once send)."""
    from dataclasses import replace

    return [
        replace(request, idempotency_key=f"idem-{request.request_id}")
        for request in build_traffic()
    ]


def _drive_direct_wall(executor, traffic):
    """One direct drive, wall-clocked with GC paused.

    Wall clock, not ``process_time``: fsync waits are blocked syscall
    time that a CPU clock would silently exclude — the one cost this
    measurement exists to price.
    """
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        rows = []
        start = time.perf_counter()
        for request in traffic:
            rows.append(executor.handle(request).to_dict())
        return time.perf_counter() - start, rows
    finally:
        if gc_was_enabled:
            gc.enable()


def measure_durable(reps: int = DURABLE_REPS):
    """The ``serve_durable`` row: journal off vs fsync policy sweep.

    The direct drive runs four interleaved ways per rep, each on a
    fresh executor (identical cache misses) — journal disabled (the
    PR-8 hot path: one attribute check), and journaled at each fsync
    policy against a fresh file.  Responses are asserted
    field-identical across all variants and reps (durability must be
    answer-preserving), and the overhead percentages are paired within
    a rep with the minimum kept, exactly like ``serve_trace_overhead``
    (any single quiet rep bounds the true overhead from above).
    ``durable_overhead_pct`` (fsync=batch, the shipped default, vs off)
    is the acceptance number, gated at
    ``TARGET_MAX_DURABLE_OVERHEAD_PCT`` by ``run_experiments.py
    --check``.
    """
    import tempfile

    from repro.service import RequestJournal

    traffic = _durable_traffic()
    timings = {variant: [] for variant in DURABLE_VARIANTS}
    canonical = None
    journal_stats = {}
    journal_bytes = 0
    warmup = _fresh_executor()
    try:
        _drive_direct_wall(warmup, traffic)
    finally:
        warmup.close()
    with tempfile.TemporaryDirectory(prefix="bench-serve-journal-") as tmpdir:
        for rep in range(reps):
            for variant in DURABLE_VARIANTS:
                journal = None
                path = None
                if variant != "off":
                    path = os.path.join(tmpdir, f"{variant}-{rep}.bin")
                    journal = RequestJournal(path, fsync=variant)
                executor = BatchExecutor(
                    pool=NetworkPool(), cache_responses=True,
                    registry=default_registry(), journal=journal,
                )
                try:
                    elapsed, rows = _drive_direct_wall(executor, traffic)
                finally:
                    executor.close()
                if journal is not None:
                    journal_stats[variant] = journal.stats()
                    journal.close()
                    journal_bytes = os.path.getsize(path)
                by_id = {row["request_id"]: _strip(row) for row in rows}
                if canonical is None:
                    canonical = by_id
                else:
                    assert by_id == canonical, (
                        f"durable variant {variant} changed a response — "
                        "journaling must be answer-preserving"
                    )
                timings[variant].append(elapsed)

    best = {variant: min(series) for variant, series in timings.items()}

    def paired_overhead(variant):
        return round(
            min(
                on / off - 1.0
                for off, on in zip(timings["off"], timings[variant])
            ) * 100.0,
            2,
        )

    batch = journal_stats["batch"]
    assert batch["admitted"] == len(set(r.request_id for r in traffic))
    assert batch["admitted"] == batch["completed"]
    return {
        "workload": "serve_durable",
        "n": 0,  # mixed traffic (n in {48, 96})
        "requests": TOTAL,
        "distinct": len(DISTINCT),
        "connections": 0,
        "window": WINDOW,
        "rejected": 0,
        # The headline throughput is the shipped default (fsync=batch).
        "elapsed_sec": round(best["batch"], 4),
        "requests_per_sec": round(TOTAL / best["batch"], 2),
        "journal_off_rps": round(TOTAL / best["off"], 2),
        "fsync_never_rps": round(TOTAL / best["never"], 2),
        "fsync_batch_rps": round(TOTAL / best["batch"], 2),
        "fsync_always_rps": round(TOTAL / best["always"], 2),
        "durable_overhead_pct": paired_overhead("batch"),
        "fsync_never_overhead_pct": paired_overhead("never"),
        "fsync_always_overhead_pct": paired_overhead("always"),
        "journal_records": batch["admitted"] + batch["completed"],
        "journal_bytes": journal_bytes,
        "fsyncs_always": journal_stats["always"]["fsyncs"],
    }


_results_cache = {}


def durable_results():
    """The ``serve_durable`` row; cached per process."""
    if "durable" not in _results_cache:
        _results_cache["durable"] = measure_durable()
    return _results_cache["durable"]


def trace_overhead_results():
    """The ``serve_trace_overhead`` row; cached per process."""
    if "trace_overhead" not in _results_cache:
        _results_cache["trace_overhead"] = measure_trace_overhead()
    return _results_cache["trace_overhead"]


def chaos_results():
    """The ``serve_chaos`` row; cached per process."""
    if "chaos" not in _results_cache:
        _results_cache["chaos"] = measure_chaos()
    return _results_cache["chaos"]


def bench_results(reps: int = 2):
    """The BENCH_serve.json payload rows; cached per process."""
    if reps not in _results_cache:
        _results_cache[reps] = (
            measure(reps=reps)
            + [chaos_results(), trace_overhead_results(), durable_results()]
        )
    return _results_cache[reps]


def efficiency(results=None) -> float:
    """min(socket req/s) / direct req/s — the acceptance ratio."""
    results = results or bench_results()
    by_mode = {r["workload"]: r for r in results}
    direct = by_mode["serve_direct"]["requests_per_sec"]
    slowest = min(
        by_mode["serve_closed_loop"]["requests_per_sec"],
        by_mode["serve_pipelined"]["requests_per_sec"],
    )
    return round(slowest / direct, 2)


def experiment() -> Experiment:
    results = bench_results()
    rows = [
        [
            r["workload"],
            r["requests"],
            r.get("connections") or "—",
            f"{r['elapsed_sec']:.3f}s",
            f"{r['requests_per_sec']:,}" if "requests_per_sec" in r else "—",
            f"{r['p50_ms']:.1f}" if "p50_ms" in r else "—",
            f"{r['p99_ms']:.1f}" if "p99_ms" in r else "—",
            r["rejected"],
        ]
        for r in results
    ]
    ratio = efficiency(results)
    chaos = next(r for r in results if r["workload"] == "serve_chaos")
    overhead = next(
        r for r in results if r["workload"] == "serve_trace_overhead"
    )
    durable = next(r for r in results if r["workload"] == "serve_durable")
    return Experiment(
        exp_id="X-SERVE",
        claim="socket front end sustains near-direct throughput for many clients",
        headers=[
            "mode", "requests", "conns", "best time", "req/s",
            "p50 ms", "p99 ms", "rejected",
        ],
        rows=rows,
        shape_holds=ratio >= TARGET_MIN_EFFICIENCY,
        notes=(
            f"The X-SVC mixed traffic at socket scale ({TOTAL} requests = "
            f"{len(DISTINCT)} distinct x{REPEAT}, n in {{48, 96}}) served "
            "three ways on fresh executors: in-process handle() calls "
            f"(direct), and {CONNECTIONS} concurrent TCP clients in "
            "closed-loop (request-response) and pipelined (burst) arrival "
            "processes against a live SocketServer.  Responses asserted "
            "field-identical per request_id across all modes and reps; "
            f"zero rejections at window {WINDOW}.  Closed-loop latency is "
            "client-observed per request; pipelined latency is sojourn "
            "time from burst start (queueing included).  Slowest-socket/"
            f"direct throughput ratio {ratio:.2f}x "
            f"(target >= {TARGET_MIN_EFFICIENCY}x).  The serve_chaos row "
            "replays the serve stack (processes mode, 2 workers) under a "
            "seeded FaultPlan — one hung worker (deadline "
            f"{CHAOS_DEADLINE_MS}ms, watchdogged into WORKER_TIMEOUT) and "
            "one crashing worker (typed WORKER_CRASHED after retry "
            f"exhaustion) alongside {CHAOS_CLEAN} clean requests; all "
            "survivors asserted field-identical to a clean sequential "
            f"drain, recovery overhead {chaos['recovery_overhead_sec']:.2f}s; "
            f"its {chaos['traces']} reassembled traces carry the typed "
            "error codes and crash-recovery attempts.  The "
            "serve_trace_overhead row prices the observability layer on "
            "the direct drive (interleaved best-of reps, fresh executors): "
            f"disabled-tracing overhead "
            f"{overhead['disabled_overhead_pct']:.1f}% vs the stubbed "
            f"baseline (gated <= {TARGET_MAX_DISABLED_OVERHEAD_PCT:.0f}% "
            "by run_experiments.py --check), enabled-tracing overhead "
            f"{overhead['tracing_overhead_pct']:.1f}% with all "
            f"{overhead['traces']} request trees collected.  The "
            "serve_durable row prices the write-ahead request journal on "
            "the same drive (every request keyed, fresh journal file per "
            "variant, paired best-of reps): journal-disabled vs fsync in "
            "{never, batch, always}, responses asserted field-identical "
            "across all variants (durability is answer-preserving); the "
            f"shipped default (fsync=batch) costs "
            f"{durable['durable_overhead_pct']:.1f}% (gated <= "
            f"{TARGET_MAX_DURABLE_OVERHEAD_PCT:.0f}% by run_experiments.py "
            f"--check), fsync=always costs "
            f"{durable['fsync_always_overhead_pct']:.1f}% with "
            f"{durable['fsyncs_always']} fsync barriers over "
            f"{durable['journal_records']} records "
            f"({durable['journal_bytes']} bytes on disk)."
        ),
    )


def test_socket_serve_smoke(benchmark):
    """Smoke-scale socket drive: answers preserved over the wire."""
    traffic = build_traffic()[:8]
    _, direct_rows, _, _ = _run_direct(traffic)
    direct = {row["request_id"]: _strip(row) for row in direct_rows}

    def run():
        executor = _fresh_executor()
        try:
            return asyncio.run(
                _drive_socket(executor, traffic, _pipelined_client)
            )
        finally:
            executor.close()

    _, rows, _, rejected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rejected == 0
    assert {row["request_id"]: _strip(row) for row in rows} == direct


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Socket serve benchmark (X-SERVE)."
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run only the chaos drive and print the serve_chaos row",
    )
    parser.add_argument(
        "--trace-overhead", action="store_true",
        help="run only the tracing-overhead drive and print its row",
    )
    parser.add_argument(
        "--durable", action="store_true",
        help="run only the journal-overhead drive and print the "
        "serve_durable row",
    )
    parser.add_argument(
        "--reps", type=int, default=2,
        help="best-of reps for the throughput modes (default 2)",
    )
    cli = parser.parse_args()
    if cli.chaos:
        print(json.dumps(chaos_results(), indent=2))
    elif cli.trace_overhead:
        print(json.dumps(trace_overhead_results(), indent=2))
    elif cli.durable:
        print(json.dumps(durable_results(), indent=2))
    else:
        print(json.dumps(bench_results(reps=cli.reps), indent=2))
