"""T-3: distributed mergesort in O(log^3 n) rounds (Algorithm 2)."""

import random

from common import Experiment, flat_or_decreasing, log2n, make_net
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort


def measure(n: int, seed: int = 5, value_range: int = None):
    net = make_net(n, seed=seed)
    rng = random.Random(seed * 1000 + n)
    vr = value_range or n
    table = {v: rng.randrange(vr) for v in net.node_ids}
    ns, order = run_protocol(net, distributed_sort(net, lambda v: table[v]))
    valid = order == sorted(net.node_ids, key=lambda v: (table[v], v))
    return net.rounds, valid


def experiment() -> Experiment:
    rows, ratios = [], []
    for n in (8, 16, 32, 64, 128, 256, 512):
        rounds, valid = measure(n)
        ratio = rounds / log2n(n) ** 3
        ratios.append(ratio)
        rows.append([n, rounds, f"{ratio:.2f}", valid])
    # Duplicate-heavy input (stress for the median splits).
    rounds_dup, valid_dup = measure(128, seed=6, value_range=3)
    rows.append(["128 (3 distinct keys)", rounds_dup,
                 f"{rounds_dup / log2n(128) ** 3:.2f}", valid_dup])
    shape = flat_or_decreasing(ratios) and all(r[-1] for r in rows)
    return Experiment(
        exp_id="T-3",
        claim="sorted path via recursive-median mergesort in O(log^3 n) rounds",
        headers=["n", "rounds", "rounds/log2(n)^3", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="rounds/log^3 n decreases from ~5 to ~2.5 across the sweep — "
        "the measured exponent is if anything below the bound (merge "
        "recursions shrink by 3/4 per level, often faster).",
    )


def test_thm03_sorting(benchmark):
    def run():
        return measure(128, seed=7)[0]

    rounds = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rounds <= 8 * log2n(128) ** 3
    exp = experiment()
    assert exp.shape_holds, exp.render()
