"""T-17: NCC1 implicit connectivity realization in Õ(1), <= 2x OPT edges."""

from common import Experiment, flat_or_decreasing, log2n, make_ncc1
from repro.core.connectivity import realize_connectivity_ncc1
from repro.validation import check_connectivity_thresholds
from repro.workloads import bimodal_rho, power_law_rho, uniform_rho


def measure(n, values, seed=26, validate=True):
    net = make_ncc1(n, seed=seed)
    rho = dict(zip(net.node_ids, values))
    result = realize_connectivity_ncc1(net, rho)
    valid = True
    if validate:
        valid = check_connectivity_thresholds(result.edges, rho, list(net.node_ids))
    return result, valid


def experiment() -> Experiment:
    rows = []
    ok = True
    ratios = []
    # n sweep at fixed demands: rounds must be O(log n)-flat ("Õ(1)").
    per_log = []
    for n in (16, 64, 256, 1024):
        result, valid = measure(n, uniform_rho(n, 3), validate=(n <= 64))
        ok &= valid
        per_log.append(result.stats.rounds / log2n(n))
        ratios.append(result.approximation_ratio)
        rows.append([f"uniform ρ=3, n={n}", result.stats.rounds,
                     f"{result.stats.rounds / log2n(n):.2f}",
                     result.num_edges, result.lower_bound_edges,
                     f"{result.approximation_ratio:.2f}", valid])
    # Demand sweep at fixed n: rounds independent of ρ.
    for value in (1, 6, 12):
        result, valid = measure(32, uniform_rho(32, value))
        ok &= valid and result.approximation_ratio <= 2.0 + 1e-9
        rows.append([f"uniform ρ={value}, n=32", result.stats.rounds,
                     f"{result.stats.rounds / log2n(32):.2f}",
                     result.num_edges, result.lower_bound_edges,
                     f"{result.approximation_ratio:.2f}", valid])
    for label, values in (
        ("bimodal 6/1, n=32", bimodal_rho(32, 6, 1)),
        ("power-law max 8, n=32", power_law_rho(32, 8, seed=3)),
    ):
        result, valid = measure(32, values)
        ok &= valid and result.approximation_ratio <= 2.0 + 1e-9
        rows.append([label, result.stats.rounds,
                     f"{result.stats.rounds / log2n(32):.2f}",
                     result.num_edges, result.lower_bound_edges,
                     f"{result.approximation_ratio:.2f}", valid])
    shape = ok and flat_or_decreasing(per_log) and max(ratios) <= 2.0 + 1e-9
    return Experiment(
        exp_id="T-17",
        claim="NCC1 implicit connectivity realization: Õ(1) rounds, "
        "edges <= 2 * optimal",
        headers=["workload", "rounds", "rounds/log2(n)", "edges",
                 "edge LB ⌈Σρ/2⌉", "ratio", "thresholds hold"],
        rows=rows,
        shape_holds=shape,
        notes="Rounds = one aggregation + one broadcast (independent of ρ); "
        "edge ratio never exceeds 2 and pairwise max-flow validates every "
        "threshold (validation limited to n<=64 for runtime).",
    )


def test_thm17_connectivity_ncc1(benchmark):
    def run():
        result, _ = measure(256, uniform_rho(256, 4), seed=27, validate=False)
        return result.stats.rounds

    rounds = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rounds <= 8 * log2n(256)
    exp = experiment()
    assert exp.shape_holds, exp.render()
