"""C-2: positions and the median in O(log n) rounds (Corollary 2)."""

from common import Experiment, flat_or_decreasing, log2n, make_net
from repro.primitives.bbst import build_bbst
from repro.primitives.protocol import ns_state, run_protocol
from repro.primitives.traversal import (
    annotate_positions,
    compute_subtree_sizes,
    find_median,
)


def measure(n: int, seed: int = 3):
    net = make_net(n, seed=seed)

    def proto():
        ns, root = yield from build_bbst(net)
        members = list(net.node_ids)
        base = net.rounds
        yield from compute_subtree_sizes(net, ns, members)
        yield from annotate_positions(net, ns, members, root)
        median = yield from find_median(net, ns, members, root)
        return ns, median, net.rounds - base

    ns, median, rounds = run_protocol(net, proto())
    positions_ok = all(
        ns_state(net, v, ns)["pos"] == i for i, v in enumerate(net.node_ids)
    )
    median_ok = median == net.node_ids[(n - 1) // 2]
    common = all(ns_state(net, v, ns)["median"] == median for v in net.node_ids)
    return rounds, positions_ok and median_ok and common


def experiment() -> Experiment:
    rows, ratios = [], []
    for n in (8, 32, 128, 512, 2048):
        rounds, valid = measure(n)
        ratio = rounds / log2n(n)
        ratios.append(ratio)
        rows.append([n, rounds, f"{ratio:.2f}", valid])
    shape = flat_or_decreasing(ratios) and all(r[-1] for r in rows)
    return Experiment(
        exp_id="C-2",
        claim="every node learns its path position; the median's address "
        "becomes common knowledge — O(log n) rounds",
        headers=["n", "rounds (post-BBST)", "rounds/log2(n)", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="Cost on top of the Theorem-1 tree: sizes (height), positions "
        "(height), median escalation + flood (2x height).",
    )


def test_cor02_position_median(benchmark):
    def run():
        return measure(512, seed=4)[0]

    rounds = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rounds <= 8 * log2n(512)
    exp = experiment()
    assert exp.shape_holds, exp.render()
