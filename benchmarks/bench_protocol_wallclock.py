"""End-to-end protocol wall-clock: full runs through the scheduler.

Methodology: unlike ``bench_engine_throughput`` — which *replays* recorded
round streams straight through ``deliver()`` to isolate the engine — this
benchmark runs the full generator protocols end to end: protocol code,
the :class:`~repro.primitives.protocol.Scheduler` trampoline, and the
round engine together.  It is the tracked trajectory for the protocol
*execution layer* (scheduler + primitives), the component the
PR-2 rework targets.

Workloads are the two message-heaviest families at their benchmark
scales: ``thm03_sorting`` (Theorem 3 distributed mergesort — the
primitive every headline realization result rides on) and
``thm05_collection`` (BBST build + global token collection).  Each case
runs on a fresh, identically-seeded network per rep with GC paused; CPU
time (``time.process_time``) is measured so shared-machine scheduler
steal does not pollute the numbers; the best rep is reported.  Every
rep's :class:`~repro.ncc.metrics.RoundStats` must be bit-identical — a
rep that diverges means the run is nondeterministic and the wall-clock
numbers are meaningless, so that is an assertion, not a warning.

``PRE_PR_BASELINE`` records the same measurement taken at the pre-rework
commit (PR 1 tree, commit 7083f83) on the reference machine, so
``BENCH_protocol.json`` carries before/after numbers for the scheduler
trampoline + sorting fast-path rework.  Speedups against it are only
meaningful on comparable hardware; the regression guard
(``run_experiments.py --check``) therefore compares *fresh vs committed*
numbers from the same machine instead.
"""

from __future__ import annotations

import gc
import random
import time

from common import Experiment, make_net
from repro.primitives.bbst import build_bbst
from repro.primitives.collection import global_collect
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort

#: The PR-2 tentpole target: end-to-end wall-clock on thm03 sorting at
#: n=256/512 must be at least this multiple of the pre-PR baseline.
TARGET_SPEEDUP = 2.0

#: Pre-rework end-to-end measurements (commit 7083f83, this methodology,
#: reference machine): best-of-reps CPU seconds per full protocol run.
PRE_PR_BASELINE = {
    "thm03_sorting/256": 0.5718,
    "thm03_sorting/512": 1.539,
    "thm05_collection/256": 0.0250,
    "thm05_collection/512": 0.0611,
}

CASES = [
    ("thm03_sorting", 256, 7),
    ("thm03_sorting", 512, 5),
    ("thm05_collection", 256, 11),
    ("thm05_collection", 512, 11),
]


def _proto_for(label: str, n: int, seed: int, net):
    if label == "thm03_sorting":
        rng = random.Random(seed * 1000 + n)
        table = {v: rng.randrange(n) for v in net.node_ids}
        return distributed_sort(net, lambda v: table[v])
    if label == "thm05_collection":
        k = n // 4
        ids = list(net.node_ids)
        step = max(1, (n - 1) // max(1, k))
        holders = {ids[(i * step) % n]: ((ids[i % n],), (i,)) for i in range(k)}
        i = 0
        while len(holders) < k:
            holders[ids[i]] = ((ids[i],), (1000 + i,))
            i += 1

        def proto():
            ns, root = yield from build_bbst(net)
            yield from global_collect(
                net, ns, list(net.node_ids), root, leader=root, holders=holders
            )

        return proto()
    raise ValueError(f"unknown workload {label!r}")


def _run_once(label: str, n: int, seed: int):
    """One timed end-to-end run on a fresh net; returns (seconds, stats)."""
    net = make_net(n, seed=seed)
    proto = _proto_for(label, n, seed, net)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.process_time()
        run_protocol(net, proto)
        elapsed = time.process_time() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, net.stats()


def measure_case(label: str, n: int, seed: int, reps: int = 9):
    """Best-of-``reps`` end-to-end wall-clock for one workload case.

    One untimed warmup run precedes the timed reps (page/branch caches);
    best-of-9 rides out multi-second contention windows on shared
    machines, which a best-of-5 at n=256 (~2s total) cannot.
    Raises AssertionError if any rep's RoundStats diverge (the runs must
    be deterministic for the timing comparison to mean anything).
    """
    _run_once(label, n, seed)
    best = float("inf")
    stats = None
    for _ in range(reps):
        elapsed, run_stats = _run_once(label, n, seed)
        best = min(best, elapsed)
        if stats is None:
            stats = run_stats
        else:
            assert run_stats == stats, f"{label}/{n}: nondeterministic RoundStats"
    baseline = PRE_PR_BASELINE.get(f"{label}/{n}")
    result = {
        "workload": label,
        "n": n,
        "seed": seed,
        "rounds": stats.rounds,
        "messages": stats.messages,
        "elapsed_sec": round(best, 4),
        "rounds_per_sec": round(stats.rounds / best),
        "msgs_per_sec": round(stats.messages / best),
        "baseline_sec": baseline,
        "target_speedup": TARGET_SPEEDUP,
    }
    if baseline is not None:
        result["speedup_vs_baseline"] = round(baseline / best, 2)
    return result


_results_cache = {}


def bench_results(reps: int = 9):
    """All case measurements (the BENCH_protocol.json payload); cached."""
    if reps in _results_cache:
        return _results_cache[reps]
    _results_cache[reps] = [
        measure_case(label, n, seed, reps=reps) for label, n, seed in CASES
    ]
    return _results_cache[reps]


def experiment() -> Experiment:
    rows = []
    sort_speedups = []
    for result in bench_results():
        speedup = result.get("speedup_vs_baseline")
        if result["workload"] == "thm03_sorting" and speedup is not None:
            sort_speedups.append(speedup)
        rows.append(
            [
                result["workload"],
                result["n"],
                result["rounds"],
                result["messages"],
                f"{result['elapsed_sec']:.3f}s",
                f"{result['rounds_per_sec']:,}",
                f"{speedup:.2f}x" if speedup is not None else "n/a",
            ]
        )
    # Shape: the protocol layer still executes end to end deterministically
    # and (on the reference machine) hits the tentpole target on sorting.
    # Cross-machine runs keep the gate on the machine-independent part.
    shape = all(r["rounds"] > 0 and r["messages"] > 0 for r in bench_results())
    hit = sum(1 for s in sort_speedups if s >= TARGET_SPEEDUP)
    return Experiment(
        exp_id="X-PROTO",
        claim="scheduler + primitive fast paths multiply end-to-end wall-clock",
        headers=[
            "workload", "n", "rounds", "messages", "best time",
            "rounds/s", "vs pre-PR",
        ],
        rows=rows,
        shape_holds=shape,
        notes=(
            "Full protocol runs (generators + scheduler + engine), fresh "
            "identically-seeded nets, GC paused, best-of reps, CPU time.  "
            "RoundStats asserted bit-identical across reps.  Baseline is "
            f"the pre-rework commit on the reference machine; target "
            f"{TARGET_SPEEDUP:.0f}x met on {hit}/{len(sort_speedups)} "
            "thm03 cases this run."
        ),
    )


def test_protocol_wallclock(benchmark):
    """Smoke-scale end-to-end run: deterministic stats, sane throughput."""
    elapsed, stats = _run_once("thm03_sorting", 128, 7)
    _, stats2 = _run_once("thm03_sorting", 128, 7)
    assert stats == stats2
    assert stats.messages > 0

    def run():
        return _run_once("thm03_sorting", 128, 7)

    benchmark.pedantic(run, rounds=3, iterations=1)
