"""T-11: implicit degree realization in Õ(min{√m, Δ}) (Algorithm 3).

Two regimes, as in Lemma 10's analysis:

* **Δ regime** — regular sequences: Δ fixed and small, m = nΔ/2 large,
  so min{√m, Δ} = Δ and the phase count should track Δ;
* **√m regime** — concentrated sequences (Theorem 20's D* family):
  k = √m nodes hold all the mass, Δ ≈ √m >> the phase budget min = √m.

The crossover between the regimes is the claim's signature shape.
"""

import math

from common import Experiment, log2n, make_net
from repro.core.degree_realization import realize_degree_sequence
from repro.validation import check_degree_match
from repro.workloads import concentrated_sequence, regular_sequence


def measure(seq, seed: int = 16, fidelity: str = "full"):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = realize_degree_sequence(net, demands, sort_fidelity=fidelity)
    assert result.realized
    valid = check_degree_match(result.edges, demands, net.node_ids)
    return result, valid


def experiment() -> Experiment:
    rows = []
    ok = True
    shape = True

    # Δ regime: fix Δ=4, grow n — phases must NOT grow with n.
    delta_phases = []
    for n in (16, 32, 64, 128):
        seq = regular_sequence(n, 4)
        result, valid = measure(seq, fidelity="charged")
        ok &= valid
        m = sum(seq) // 2
        budget = min(math.sqrt(m), 4)
        delta_phases.append(result.phases)
        rows.append(["Δ-regime (d=4)", n, m, 4, result.phases,
                     f"{budget:.1f}", result.stats.rounds, valid])
    shape &= max(delta_phases) <= 2 * 4 + 2
    shape &= delta_phases[-1] <= delta_phases[0] + 1  # flat in n

    # √m regime: concentrated mass — phases track √m not Δ.
    for n, k in ((64, 6), (64, 10), (128, 14)):
        seq = concentrated_sequence(n, k, seed=1)
        result, valid = measure(seq, fidelity="charged")
        ok &= valid
        m = sum(seq) // 2
        delta = max(seq)
        budget = min(math.sqrt(m), delta)
        rows.append([f"√m-regime (k={k})", n, m, delta, result.phases,
                     f"{budget:.1f}", result.stats.rounds, valid])
        shape &= result.phases <= 2 * budget + 2

    # Full-fidelity spot check agrees with charged.
    seq = regular_sequence(32, 4)
    full, valid_full = measure(seq, fidelity="full")
    charged, _ = measure(seq, fidelity="charged")
    ok &= valid_full and (full.phases == charged.phases)
    rows.append(["full-fidelity check", 32, sum(seq) // 2, 4, full.phases,
                 "4.0", full.stats.rounds, valid_full])

    return Experiment(
        exp_id="T-11",
        claim="implicit degree realization in Õ(min{√m, Δ}) rounds",
        headers=["regime", "n", "m", "Δ", "phases", "min(√m,Δ)", "rounds", "valid"],
        rows=rows,
        shape_holds=ok and shape,
        notes="Phases stay within 2·min(√m, Δ)+2 in both regimes and are "
        "flat in n for fixed Δ; each phase is sort-dominated (Õ(1) with "
        "charged sorting, O(log³ n) simulated).",
    )


def test_thm11_implicit_degree(benchmark):
    def run():
        seq = regular_sequence(48, 4)
        result, _ = measure(seq, seed=17, fidelity="full")
        return result.stats.rounds

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rounds <= 2 * (2 * 4 + 2) * 10 * log2n(48) ** 3
    exp = experiment()
    assert exp.shape_holds, exp.render()
