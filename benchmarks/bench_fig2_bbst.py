"""FIG-2: structure 𝓛 and the balanced binary search tree (Theorem 1's
construction on the paper's 8-node example).

Checks the exact levels of 𝓛 (interleaved paths at strides 2^i) and the
exact BFS tree of Figure 2, then renders them.
"""

from common import Experiment, make_net
from repro.primitives.bbst import build_bbst, level_paths
from repro.primitives.protocol import ns_state, run_protocol


def figure_data(n: int = 8, seed: int = 0):
    net = make_net(n, seed=seed)
    ns, root = run_protocol(net, build_bbst(net))
    ids = list(net.node_ids)
    label = {v: i + 1 for i, v in enumerate(ids)}
    levels = {}
    level = 0
    while True:
        paths = level_paths(net, ns, ids, level)
        if not paths or all(len(p) <= 1 for p in paths) and level > 0:
            levels[level] = sorted(tuple(label[v] for v in p) for p in paths)
            break
        levels[level] = sorted(tuple(label[v] for v in p) for p in paths)
        level += 1
        if level > 10:
            break
    tree = {}
    for v in ids:
        state = ns_state(net, v, ns)
        tree[label[v]] = (
            label.get(state.get("left")),
            label.get(state.get("right")),
        )
    return levels, tree, label[root]


def experiment() -> Experiment:
    levels, tree, root = figure_data(8)
    expected_l1 = [(1, 3, 5, 7), (2, 4, 6, 8)]
    expected_l2 = [(1, 5), (2, 6), (3, 7), (4, 8)]
    expected_tree = {1: (None, 5), 5: (3, 7), 3: (2, 4), 7: (6, 8)}
    ok = (
        levels.get(1) == expected_l1
        and levels.get(2) == expected_l2
        and root == 1
        and all(tree[k] == v for k, v in expected_tree.items())
    )
    rows = [
        ["L0", str(levels.get(0))],
        ["L1 (paper: 1357 / 2468)", str(levels.get(1))],
        ["L2 (paper: 15/37/26/48)", str(levels.get(2))],
        ["BFS tree root", root],
        ["1 ->", str(tree[1])],
        ["5 ->", str(tree[5])],
        ["3 ->", str(tree[3])],
        ["7 ->", str(tree[7])],
        ["inorder == Gk order", ok],
    ]
    return Experiment(
        exp_id="FIG-2",
        claim="structure 𝓛 levels and the controlled-BFS BBST on 8 nodes",
        headers=["item", "value"],
        rows=rows,
        shape_holds=ok,
        notes="Matches Figure 2 exactly: levels interleave at strides 2^i; "
        "the tree is 1(r)->5->(3,7)->(2,4,6,8).",
    )


def test_fig2_bbst(benchmark):
    def run():
        net = make_net(8, seed=0)
        run_protocol(net, build_bbst(net))
        return net.rounds

    benchmark.pedantic(run, rounds=5, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
