"""T-6/7/8: local aggregation, multicast and token collection over the
butterfly emulation — Õ(L/n + l/log n + log n) shapes."""

import random

from common import Experiment, indexed_net, log2n
from repro.primitives.butterfly import AggGroup, ColGroup, McGroup
from repro.primitives.groups import local_aggregate, local_multicast, token_collect
from repro.primitives.protocol import run_protocol


def measure_aggregate(n: int, g: int, group_size: int, seed: int = 12):
    net = indexed_net(n, seed=seed)
    ids = list(net.node_ids)
    rng = random.Random(seed)
    groups = [
        AggGroup(
            gid=i,
            members={v: 1 for v in rng.sample(ids, group_size)},
            dest=rng.choice(ids),
            op="sum",
        )
        for i in range(g)
    ]
    base = net.rounds
    res = run_protocol(net, local_aggregate(net, "ip", groups))
    valid = all(res[i] == group_size for i in range(g))
    return net.rounds - base, valid


def measure_multicast(n: int, g: int, group_size: int, seed: int = 13):
    net = indexed_net(n, seed=seed)
    ids = list(net.node_ids)
    rng = random.Random(seed)
    groups = [
        McGroup(
            gid=i,
            source=rng.choice(ids),
            members=tuple(rng.sample(ids, group_size)),
            data=(i,),
        )
        for i in range(g)
    ]
    base = net.rounds
    deliveries = run_protocol(net, local_multicast(net, "ip", groups))
    return net.rounds - base, deliveries == g * group_size


def measure_collect(n: int, g: int, group_size: int, seed: int = 14):
    net = indexed_net(n, seed=seed)
    ids = list(net.node_ids)
    rng = random.Random(seed)
    groups = []
    for i in range(g):
        members = rng.sample(ids, group_size)
        groups.append(
            ColGroup(
                gid=i,
                tokens={v: ((v,), (i,)) for v in members},
                dest=rng.choice(ids),
            )
        )
    base = net.rounds
    res = run_protocol(net, token_collect(net, "ip", groups))
    valid = all(len(res[i]) == group_size for i in range(g))
    return net.rounds - base, valid


def experiment() -> Experiment:
    rows = []
    ok = True
    for name, fn in (
        ("aggregate", measure_aggregate),
        ("multicast", measure_multicast),
        ("collect", measure_collect),
    ):
        for n, g, size in ((64, 4, 8), (64, 16, 8), (256, 16, 8), (256, 16, 32)):
            rounds, valid = fn(n, g, size)
            ok &= valid
            load = g * size  # L
            bound = load / n + log2n(n)
            rows.append([name, n, g, size, rounds, f"{rounds / bound:.1f}", valid])
    # Shape: same (g, size) at larger n must not cost more rounds
    # (more parallel capacity); check on the aggregate rows.
    agg_64 = [r for r in rows if r[0] == "aggregate" and r[1] == 64 and r[2] == 16][0][4]
    agg_256 = [r for r in rows if r[0] == "aggregate" and r[1] == 256 and r[3] == 8][0][4]
    shape = ok and agg_256 <= 2.5 * agg_64
    return Experiment(
        exp_id="T-6/7/8",
        claim="group aggregation/multicast/collection in "
        "Õ(L/n + l/log n + log n) over the butterfly emulation",
        headers=["primitive", "n", "groups", "group size", "rounds",
                 "rounds/(L/n+log n)", "valid"],
        rows=rows,
        shape_holds=shape,
        notes="Dimension-ordered bit-fixing with per-edge rate 1 keeps every "
        "node within its O(log n) receive budget; rounds track the "
        "L/n + log n envelope (constant ~ 2-6 covering queueing).",
    )


def test_thm06_08_group_primitives(benchmark):
    def run():
        return measure_aggregate(128, 16, 16, seed=15)[0]

    rounds = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rounds <= 30 * log2n(128)
    exp = experiment()
    assert exp.shape_holds, exp.render()
