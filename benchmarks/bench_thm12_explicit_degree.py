"""T-12: explicit realization in O(m/n + Δ/log n + log n) extra rounds."""

from common import Experiment, log2n, make_net
from repro.core.degree_realization import degree_realization_protocol
from repro.core.explicit import explicit_conversion_protocol
from repro.primitives.protocol import run_protocol
from repro.validation import check_explicit
from repro.workloads import concentrated_sequence, regular_sequence


def measure(seq, seed: int = 18):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))

    def proto():
        outcome = yield from degree_realization_protocol(
            net, demands, sort_fidelity="charged"
        )
        assert outcome["realized"]
        base = net.rounds
        count = yield from explicit_conversion_protocol(net)
        return net.rounds - base, count

    conv_rounds, introduced = run_protocol(net, proto())
    return conv_rounds, introduced, check_explicit(net), net


def experiment() -> Experiment:
    rows = []
    ok = True
    ratios = []
    for label, seq in (
        ("regular d=4, n=32", regular_sequence(32, 4)),
        ("regular d=4, n=128", regular_sequence(128, 4)),
        ("regular d=8, n=64", regular_sequence(64, 8)),
        ("regular d=16, n=64", regular_sequence(64, 16)),
        ("concentrated k=10, n=64", concentrated_sequence(64, 10, seed=2)),
    ):
        conv_rounds, introduced, explicit, net = measure(seq)
        ok &= explicit
        n = len(seq)
        m = sum(seq) // 2
        delta = max(seq)
        bound = m / n + delta / log2n(n) + log2n(n)
        ratio = conv_rounds / bound
        ratios.append(ratio)
        rows.append([label, m, delta, conv_rounds, f"{bound:.1f}",
                     f"{ratio:.2f}", explicit])
    shape = ok and max(ratios) <= 8 * min(max(ratios[0], 0.2), 10)
    return Experiment(
        exp_id="T-12",
        claim="implicit -> explicit conversion in O(m/n + Δ/log n + log n) rounds",
        headers=["workload", "m", "Δ", "conversion rounds",
                 "m/n+Δ/log n+log n", "ratio", "explicit"],
        rows=rows,
        shape_holds=shape,
        notes="Conversion = one Theorem-8 token collection (every implicit "
        "edge holder introduces itself); ratios to the bound stay O(1)-ish "
        "across m and Δ sweeps, and explicitness is audited at the "
        "knowledge level.",
    )


def test_thm12_explicit_degree(benchmark):
    def run():
        return measure(regular_sequence(64, 8), seed=19)[0]

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
