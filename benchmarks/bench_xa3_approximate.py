"""X-A3: the Õ(1)-phase approximate degree realization (stub pairing).

Reconstruction of the contributions-list claim "an Õ(1) round algorithm
for approximate degree sequence realization" (the preprint omits its
details; see DESIGN.md §5).  Three shapes to verify:

1. **constant phases** — unlike Algorithm 3, cost does not multiply with
   min{√m, Δ} phases: growing Δ at fixed n leaves rounds nearly flat
   (one sort + three collections, with only the pipelined token load
   growing);
2. **small, theory-shaped error** — the L1 degree shortfall tracks the
   Σ d_v²/m collision prediction: tiny for sparse/regular inputs,
   substantial only when d² ≈ m (dense concentrated inputs);
3. **repair rounds shrink error geometrically.**
"""

from common import Experiment, log2n, make_net
from repro.core.approximate import approximate_degree_realization
from repro.validation import check_explicit, check_simple
from repro.workloads import (
    concentrated_sequence,
    power_law_sequence,
    regular_sequence,
)


def measure(seq, seed=40, repair=0):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = approximate_degree_realization(
        net, demands, sort_fidelity="charged", repair_rounds=repair
    )
    assert check_simple(result.edges)
    assert check_explicit(net)
    return result


def experiment() -> Experiment:
    rows = []
    ok = True

    # Shape 1: Δ sweep at fixed n — rounds nearly flat (vs Alg 3's Δ phases).
    delta_rounds = {}
    for d in (4, 8, 16):
        seq = regular_sequence(64, d)
        result = measure(seq)
        delta_rounds[d] = result.stats.rounds
        predicted = sum(x * x for x in seq) / max(1, sum(seq) // 2)
        rows.append([f"regular d={d}, n=64", result.stats.rounds,
                     result.l1_error, f"{predicted:.0f}",
                     f"{result.relative_error:.3f}", 0])
    ok &= delta_rounds[16] <= 2.0 * delta_rounds[4]

    # Shape 2: error tracks the collision prediction across workloads.
    for label, seq in (
        ("power-law n=64", power_law_sequence(64, seed=8)),
        ("concentrated k=10, n=64", concentrated_sequence(64, 10, seed=8)),
    ):
        seq = list(seq)
        if sum(seq) % 2:
            seq[0] += 1
        result = measure(seq)
        predicted = sum(x * x for x in seq) / max(1, sum(seq) // 2)
        ok &= result.l1_error <= 4 * predicted + 8
        rows.append([label, result.stats.rounds, result.l1_error,
                     f"{predicted:.0f}", f"{result.relative_error:.3f}", 0])

    # Shape 3: repair rounds shrink the error monotonically.
    errors = []
    for repair in (0, 1, 3):
        result = measure(regular_sequence(64, 8), seed=41, repair=repair)
        errors.append(result.l1_error)
        rows.append([f"regular d=8 + {repair} repairs", result.stats.rounds,
                     result.l1_error, "-", f"{result.relative_error:.3f}",
                     repair])
    ok &= errors[-1] <= errors[0] and errors[1] <= errors[0]

    return Experiment(
        exp_id="X-A3",
        claim="Õ(1)-phase approximate degree realization (reconstruction): "
        "constant phases, error ~ Σd²/m, geometric repair",
        headers=["workload", "rounds", "L1 error", "predicted Σd²/m",
                 "relative error", "repairs"],
        rows=rows,
        shape_holds=ok,
        notes="One sort + three Theorem-8 collections realize the sequence "
        "explicitly in a constant number of phases; the measured shortfall "
        "follows the birthday-collision prediction and repair passes "
        "remove it geometrically.  Evades no lower bound: token load is "
        "still Ω(m/n + Δ/log n) as Theorems 19/20 require.",
    )


def test_xa3_approximate(benchmark):
    def run():
        return measure(regular_sequence(64, 6), seed=42).stats.rounds

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rounds <= 40 * log2n(64) ** 3
    exp = experiment()
    assert exp.shape_holds, exp.render()
