"""X-SVC — batch realization service throughput: cold vs warm path.

Methodology: one mixed *service traffic* batch of ``BATCH_SIZE``
requests spanning five workload kinds and three-plus scenario families
at n ∈ {64, 256}.  Real service traffic repeats itself — popular
scenarios are requested again and again — so the batch repeats each of
the ``len(DISTINCT)`` distinct requests ``REPEAT`` times (deterministic
shuffle, distinct ``request_id`` per occurrence).  The same batch is
then drained two ways:

``cold``
    One-shot handling, the pre-service posture: every request
    materializes its scenario from scratch, constructs a fresh
    :class:`~repro.ncc.network.Network`, and runs the realizer — no
    pool, no caches (the in-process equivalent of today's one-shot CLI
    calls, conservatively *excluding* their per-invocation interpreter
    startup).

``warm``
    The service stack: a :class:`~repro.service.pool.NetworkPool` of
    reset-verified warm networks, the registry's memoized scenario
    materialization, and the deterministic response cache, exactly as
    ``python -m repro serve`` runs it.  Fresh executor per rep, so every
    rep pays its own cache misses on the distinct requests.

Responses must be field-identical between the two modes (cached
responses are bit-equal to fresh ones by determinism — the pool-reset
differential suite is the underlying gate); the batch's summed
rounds/messages are the regression-guard invariants.  Throughput is
requests/sec over the whole batch, best-of-reps CPU time with GC
paused.  The tentpole acceptance is warm >= TARGET_SPEEDUP x cold.
"""

from __future__ import annotations

import gc
import random
import time

from common import Experiment
from repro.service import (
    BatchExecutor,
    NetworkPool,
    RealizationRequest,
    default_registry,
)

#: Tentpole acceptance: warm-path throughput over cold-path throughput.
TARGET_SPEEDUP = 1.5

#: Distinct requests: (kind, scenario, n, seed, extra request fields).
#: Five kinds across {64, 256}, grouped into shared *network identities*
#: — requests with the same (n, seed, engine, variant) run on the same
#: simulated deployment, which is exactly what the pool reuses across
#: different workload kinds (seed is part of the pool key: it fixes the
#: ID space, so distinct seeds are distinct deployments).
DISTINCT = [
    # Identity A: the (64, seed=3) NCC0 deployment, five workload kinds.
    ("degree_implicit", "random_graphic", 64, 3, {}),
    ("degree_envelope", "near_graphic", 64, 3, {}),
    ("tree", "tree_random", 64, 3, {}),
    ("connectivity", "rho_uniform", 64, 3, {}),
    ("approximate", "regular", 64, 3, {}),
    # Identity B: the (256, seed=5) NCC0 deployment, four kinds.
    ("degree_implicit", "power_law", 256, 5, {}),
    ("tree", "tree_caterpillar", 256, 5, {}),
    ("connectivity", "rho_ranked", 256, 5, {}),
    ("approximate", "regular", 256, 5, {}),
    # Identity C: the NCC1 variant is its own deployment (pool key).
    ("connectivity", "rho_bimodal", 256, 5, {"model": "ncc1"}),
]

#: Each distinct request recurs this many times in the traffic mix.
REPEAT = 6

BATCH_SIZE = len(DISTINCT) * REPEAT


def build_batch():
    """The deterministic mixed batch (shuffled, unique request_ids)."""
    requests = []
    for rep in range(REPEAT):
        for i, (kind, scenario, n, seed, extra) in enumerate(DISTINCT):
            requests.append(
                RealizationRequest(
                    kind=kind,
                    scenario=scenario,
                    n=n,
                    seed=seed,
                    request_id=f"{kind}-{scenario}-{n}-r{rep}",
                    **extra,
                ).validate()
            )
    random.Random(0).shuffle(requests)
    return requests


def _drain(executor, batch):
    """Timed drain with GC paused; returns (cpu_seconds, responses)."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.process_time()
        responses = executor.run(batch)
        elapsed = time.process_time() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, responses


def _cold_executor():
    return BatchExecutor(pool=None, cache_responses=False,
                         cache_scenarios=False, registry=default_registry())


def _warm_executor():
    return BatchExecutor(pool=NetworkPool(), cache_responses=True,
                         registry=default_registry())


def measure(reps: int = 2):
    """Best-of-``reps`` cold and warm drains of the same batch.

    A fresh executor per rep: the warm path re-earns its caches every
    rep (the measurement includes the misses), and the cold path cannot
    accidentally retain anything.  Responses are asserted field-identical
    across modes and reps.
    """
    batch = build_batch()
    canonical = None  # first drain's responses; later drains must match
    best = {"cold": float("inf"), "warm": float("inf")}
    last_stats = {}
    for _ in range(reps):
        for mode, make in (("cold", _cold_executor), ("warm", _warm_executor)):
            executor = make()
            elapsed, responses = _drain(executor, batch)
            fps = [r.fingerprint() for r in responses]
            if canonical is None:
                canonical = responses
            else:
                assert fps == [r.fingerprint() for r in canonical], (
                    f"{mode} drain changed a response — the service stack "
                    "must be answer-preserving"
                )
            assert all(r.error is None for r in responses)
            best[mode] = min(best[mode], elapsed)
            last_stats[mode] = executor.stats()

    total_rounds = sum(r.rounds for r in canonical)
    total_messages = sum(r.messages for r in canonical)
    kinds = sorted({r.kind for r in batch})
    sizes = sorted({r.size for r in batch})
    results = []
    for mode in ("cold", "warm"):
        stats = last_stats[mode]
        pool = stats.get("pool", {})
        results.append(
            {
                "workload": f"service_batch_{mode}",
                "n": 0,  # mixed batch (n in `sizes`)
                "requests": len(batch),
                "distinct": len(DISTINCT),
                "kinds": kinds,
                "sizes": sizes,
                "rounds": total_rounds,
                "messages": total_messages,
                "elapsed_sec": round(best[mode], 4),
                "requests_per_sec": round(len(batch) / best[mode], 2),
                "response_cache_hits": stats["response_cache_hits"],
                "scenario_cache_hits": stats["scenario_cache_hits"],
                "pool_hits": pool.get("pool_hits", 0),
                "network_constructions": pool.get(
                    "constructions", len(batch)
                ),
            }
        )
    return results


_results_cache = {}


def bench_results(reps: int = 2):
    """Cold/warm measurements (the BENCH_service.json payload); cached."""
    if reps not in _results_cache:
        _results_cache[reps] = measure(reps=reps)
    return _results_cache[reps]


def speedup(results=None) -> float:
    results = results or bench_results()
    by_mode = {r["workload"]: r for r in results}
    return round(
        by_mode["service_batch_warm"]["requests_per_sec"]
        / by_mode["service_batch_cold"]["requests_per_sec"],
        2,
    )


def experiment() -> Experiment:
    results = bench_results()
    rows = [
        [
            r["workload"],
            r["requests"],
            r["distinct"],
            f"{r['elapsed_sec']:.3f}s",
            f"{r['requests_per_sec']:,}",
            r["network_constructions"],
            r["pool_hits"],
            r["response_cache_hits"],
        ]
        for r in results
    ]
    ratio = speedup(results)
    return Experiment(
        exp_id="X-SVC",
        claim="warm service stack multiplies mixed-batch request throughput",
        headers=[
            "mode", "requests", "distinct", "best time", "req/s",
            "nets built", "pool hits", "cache hits",
        ],
        rows=rows,
        shape_holds=ratio >= TARGET_SPEEDUP,
        notes=(
            f"One mixed batch ({BATCH_SIZE} requests = {len(DISTINCT)} "
            f"distinct x{REPEAT}, kinds {len(set(d[0] for d in DISTINCT))}, "
            "n in {64, 256}) drained cold (fresh generation + fresh Network "
            "per request, no caches) vs warm (NetworkPool + scenario cache + "
            "deterministic response cache, fresh executor per rep).  "
            "Responses asserted field-identical across modes.  Warm/cold "
            f"throughput ratio {ratio:.2f}x (target {TARGET_SPEEDUP}x).  "
            "Cold conservatively excludes the one-shot CLI's per-invocation "
            "interpreter startup the service also amortizes."
        ),
    )


def test_service_throughput(benchmark):
    """Smoke-scale service drain: answers preserved, caches engaged."""
    batch = build_batch()[:12]
    cold = _cold_executor()
    _, cold_responses = _drain(cold, batch)
    warm = _warm_executor()

    def run():
        return _drain(warm, batch)

    benchmark.pedantic(run, rounds=1, iterations=1)
    _, warm_responses = _drain(warm, batch)
    assert [r.fingerprint() for r in warm_responses] == [
        r.fingerprint() for r in cold_responses
    ]
    assert warm.response_cache_hits > 0
