"""Engine throughput: fast vs reference on recorded NCC round streams.

Methodology: run a protocol once to *record* its per-round send lists
(the exact ``RoundPlan`` stream the scheduler produced), then *replay*
that stream straight through each engine's ``deliver`` on a fresh,
identically-seeded network.  Replaying is valid because the stream is
exactly what a deterministic re-run would produce, and it isolates the
round loop — the component the ``NCCConfig.engine`` switch changes —
from protocol-side generator overhead, which is identical for both
engines.

Workloads are the two message-heaviest benchmark families:
``bench_thm03_sorting`` (distributed mergesort) and
``bench_thm05_collection`` (BBST build + global token collection), at
their benchmark scales.  Engines alternate rep by rep (so machine noise
hits both), each rep runs with GC paused, and the best rep per engine is
reported.  The replayed metrics are asserted bit-identical between
engines on every run — throughput numbers are only comparable because
the work is provably the same.

Since PR 10 each workload also measures the **columnar-native** round
path: the same stream in its two wire forms — per-message object
columns (decode builds one ``Message`` per entry, then the object lane
delivers) versus a :class:`~repro.ncc.wire.ColumnarRoundBatch` blob
carrying its word column (decode builds *no* objects; the columnar lane
checks caps as counting passes and hands out lazy
``ColumnarInbox`` slices).  Both timed regions cover the full
wire-arrival -> delivered-inboxes trip, so the ratio
(``columnar_speedup_vs_fast``) prices exactly what the columnar
representation removes: per-message construction at the boundary and
per-message size re-accounting (the word column rides the wire).  A
``tracemalloc`` pass records each form's peak allocation over one
replay.  All four replay modes assert bit-identical ``RoundStats``.
"""

from __future__ import annotations

import gc
import random
import time
import tracemalloc

from common import Experiment, make_net
from repro.ncc.network import RoundPlan
from repro.ncc.wire import ColumnarRoundBatch, _decode_messages, _encode_messages
from repro.primitives.bbst import build_bbst
from repro.primitives.collection import global_collect
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort

#: Replay target: the fast engine should deliver at least this multiple
#: of the reference engine's messages/sec (the PR's tentpole goal).
TARGET_SPEEDUP = 3.0
#: Shape gate for EXPERIMENTS.md: robust to noisy shared machines.
SHAPE_SPEEDUP = 2.0
#: Columnar-native gate (PR 10): the wire->inboxes trip on columnar
#: batches must beat the object-decode fast path by this factor on
#: every workload.  ``run_experiments.py --check`` enforces it as a
#: fresh-run property.
COLUMNAR_TARGET_SPEEDUP = 1.25


def _record(n: int, seed: int, proto_factory):
    """Run a protocol once and capture every round's send list."""
    net = make_net(n, seed=seed)
    plans = []
    original_deliver = net.deliver

    def recording_deliver(plan):
        plans.append(list(plan._sends))
        return original_deliver(plan)

    net.deliver = recording_deliver
    run_protocol(net, proto_factory(net))
    return plans


def _sorting_proto(n: int, seed: int):
    def factory(net):
        rng = random.Random(seed * 1000 + n)
        table = {v: rng.randrange(n) for v in net.node_ids}
        return distributed_sort(net, lambda v: table[v])

    return factory


def _collection_proto(n: int, k: int, seed: int):
    def factory(net):
        ids = list(net.node_ids)
        step = max(1, (n - 1) // max(1, k))
        holders = {ids[(i * step) % n]: ((ids[i % n],), (i,)) for i in range(k)}
        i = 0
        while len(holders) < k:
            holders[ids[i]] = ((ids[i],), (1000 + i,))
            i += 1

        def proto():
            ns, root = yield from build_bbst(net)
            yield from global_collect(
                net, ns, list(net.node_ids), root, leader=root, holders=holders
            )

        return proto()

    return factory


def _replay_once(n: int, seed: int, plans, engine: str):
    """One timed replay of the stream; returns (seconds, messages, stats).

    CPU time, not wall clock: the replay is single-threaded and
    CPU-bound, so process time measures the engine without charging it
    for scheduler steal on shared machines.
    """
    net = make_net(n, seed=seed, engine=engine)
    deliver = net.engine.deliver
    shell = RoundPlan()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.process_time()
        for sends in plans:
            shell._sends = sends
            deliver(shell)
        elapsed = time.process_time() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, net.messages_delivered, net.stats()


def _wire_forms(plans, word_bits: int):
    """The recorded stream in both wire forms.

    Objects: ``(srcs, dsts, message-columns)`` — decoding constructs one
    ``Message`` per entry (the pre-columnar arrival path).  Columnar:
    ``ColumnarRoundBatch`` blobs carrying the word column (sender-side
    accounting, computed once; a shipped column is never re-sized).
    """
    obj_blobs = []
    col_blobs = []
    for sends in plans:
        obj_blobs.append(
            (
                [src for src, _, _ in sends],
                [dst for _, dst, _ in sends],
                _encode_messages([m for _, _, m in sends]),
            )
        )
        batch = ColumnarRoundBatch.from_sends(sends, keep_messages=False)
        batch.ensure_words(word_bits)
        col_blobs.append(batch.to_wire())
    return obj_blobs, col_blobs


def _replay_wire(n: int, seed: int, blobs, columnar: bool):
    """One timed wire->inboxes replay on the fast engine.

    Decode is inside the timed region for both forms — that boundary is
    where the columnar representation's savings live.
    """
    net = make_net(n, seed=seed, engine="fast")
    deliver = net.engine.deliver
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if columnar:
            start = time.process_time()
            for blob in blobs:
                deliver(
                    RoundPlan.from_batch(ColumnarRoundBatch.from_wire(blob))
                )
            elapsed = time.process_time() - start
        else:
            shell = RoundPlan()
            start = time.process_time()
            for srcs, dsts, mcols in blobs:
                shell._sends = list(zip(srcs, dsts, _decode_messages(mcols)))
                deliver(shell)
            elapsed = time.process_time() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, net.messages_delivered, net.stats()


def _peak_kb(n: int, seed: int, blobs, columnar: bool) -> int:
    """tracemalloc peak (KiB) over one wire->inboxes replay pass."""
    tracemalloc.start()
    try:
        _replay_wire(n, seed, blobs, columnar)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return round(peak / 1024)


def measure(label: str, n: int, seed: int, proto_factory, reps: int = 9):
    """Interleaved best-of-``reps`` replay of one workload on both engines.

    Returns a result dict; raises AssertionError if the engines' metrics
    are not bit-identical.
    """
    plans = _record(n, seed, proto_factory)
    obj_blobs, col_blobs = _wire_forms(
        plans, make_net(n, seed=seed).word_bits
    )
    best = {
        "fast": float("inf"),
        "reference": float("inf"),
        "wire_objects": float("inf"),
        "wire_columnar": float("inf"),
    }
    messages = stats = None

    def note(mode, elapsed, msgs, run_stats):
        nonlocal messages, stats
        best[mode] = min(best[mode], elapsed)
        if stats is None:
            messages, stats = msgs, run_stats
        else:
            assert run_stats == stats, (
                f"{label}: {mode} metrics diverge from first replay"
            )

    for _ in range(reps):
        for engine in ("fast", "reference"):
            note(engine, *_replay_once(n, seed, plans, engine))
        note("wire_objects", *_replay_wire(n, seed, obj_blobs, False))
        note("wire_columnar", *_replay_wire(n, seed, col_blobs, True))
    fast_mps = messages / best["fast"]
    ref_mps = messages / best["reference"]
    wire_obj_mps = messages / best["wire_objects"]
    wire_col_mps = messages / best["wire_columnar"]
    return {
        "workload": label,
        "n": n,
        "rounds": len(plans),
        "messages": messages,
        "fast_msgs_per_sec": round(fast_mps),
        "reference_msgs_per_sec": round(ref_mps),
        "speedup": round(fast_mps / ref_mps, 2),
        "target_speedup": TARGET_SPEEDUP,
        "columnar_msgs_per_sec": round(wire_col_mps),
        "wire_objects_msgs_per_sec": round(wire_obj_mps),
        "columnar_speedup_vs_fast": round(wire_col_mps / wire_obj_mps, 2),
        "columnar_target_speedup": COLUMNAR_TARGET_SPEEDUP,
        "objects_peak_kb": _peak_kb(n, seed, obj_blobs, False),
        "columnar_peak_kb": _peak_kb(n, seed, col_blobs, True),
    }


_results_cache = {}


def bench_results(reps: int = 9):
    """All workload measurements (the BENCH_engine.json payload).

    Cached per ``reps`` so one driver run measures once and reports the
    same numbers in EXPERIMENTS.md and BENCH_engine.json.
    """
    if reps in _results_cache:
        return _results_cache[reps]
    cases = [
        ("thm03_sorting", 256, 7, _sorting_proto(256, 7)),
        ("thm03_sorting", 512, 5, _sorting_proto(512, 5)),
        ("thm05_collection", 256, 11, _collection_proto(256, 64, 11)),
        ("thm05_collection", 512, 11, _collection_proto(512, 128, 11)),
    ]
    _results_cache[reps] = [
        measure(label, n, seed, factory, reps=reps)
        for label, n, seed, factory in cases
    ]
    return _results_cache[reps]


def experiment() -> Experiment:
    rows = []
    speedups = []
    columnar_speedups = []
    for result in bench_results():
        speedups.append(result["speedup"])
        columnar_speedups.append(result["columnar_speedup_vs_fast"])
        rows.append(
            [
                result["workload"],
                result["n"],
                result["messages"],
                f"{result['fast_msgs_per_sec']:,}",
                f"{result['reference_msgs_per_sec']:,}",
                f"{result['speedup']:.2f}x",
                f"{result['columnar_msgs_per_sec']:,}",
                f"{result['columnar_speedup_vs_fast']:.2f}x",
                f"{result['objects_peak_kb']:,}/{result['columnar_peak_kb']:,}",
            ]
        )
    shape = all(s >= SHAPE_SPEEDUP for s in speedups) and all(
        s >= COLUMNAR_TARGET_SPEEDUP for s in columnar_speedups
    )
    hit_target = sum(1 for s in speedups if s >= TARGET_SPEEDUP)
    return Experiment(
        exp_id="X-ENG",
        claim="fast engine multiplies reference round-loop throughput",
        headers=[
            "workload",
            "n",
            "messages",
            "fast msg/s",
            "ref msg/s",
            "speedup",
            "columnar msg/s",
            "vs obj-decode",
            "peak KiB obj/col",
        ],
        rows=rows,
        shape_holds=shape,
        notes=(
            f"Replay of recorded round streams, interleaved best-of reps, GC "
            f"paused; metrics bit-identical across engines by assertion.  "
            f"Target {TARGET_SPEEDUP:.0f}x met on {hit_target}/{len(speedups)} "
            f"cases this run (shared-machine noise moves individual runs by "
            f"~10%); the shape gate is {SHAPE_SPEEDUP:.0f}x.  Columnar "
            f"columns time the full wire-arrival->inboxes trip for both "
            f"forms (object decode + object lane vs columnar decode + "
            f"columnar lane); the gate is "
            f"{COLUMNAR_TARGET_SPEEDUP:.2f}x, and the peak-KiB pair is "
            f"tracemalloc's peak over one replay of each form."
        ),
    )


def test_engine_throughput(benchmark):
    """Smoke-scale replay: fast beats reference and metrics match."""
    plans = _record(128, 7, _sorting_proto(128, 7))

    def run():
        return _replay_once(128, 7, plans, "fast")

    elapsed_fast, messages, stats_fast = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    elapsed_ref, _, stats_ref = min(
        (_replay_once(128, 7, plans, "reference") for _ in range(3)),
        key=lambda r: r[0],
    )
    assert stats_fast == stats_ref
    assert messages > 0
    # Loose gate for CI boxes; the full experiment reports exact numbers.
    assert elapsed_fast < elapsed_ref


def test_columnar_replay(benchmark):
    """Smoke-scale columnar wire replay: beats object decode, stats match."""
    plans = _record(128, 7, _sorting_proto(128, 7))
    obj_blobs, col_blobs = _wire_forms(plans, make_net(128, seed=7).word_bits)

    def run():
        return _replay_wire(128, 7, col_blobs, True)

    _, messages, stats_col = benchmark.pedantic(run, rounds=3, iterations=1)
    elapsed_obj, _, stats_obj = min(
        (_replay_wire(128, 7, obj_blobs, False) for _ in range(3)),
        key=lambda r: r[0],
    )
    assert stats_col == stats_obj
    assert messages > 0
