"""Engine throughput: fast vs reference on recorded NCC round streams.

Methodology: run a protocol once to *record* its per-round send lists
(the exact ``RoundPlan`` stream the scheduler produced), then *replay*
that stream straight through each engine's ``deliver`` on a fresh,
identically-seeded network.  Replaying is valid because the stream is
exactly what a deterministic re-run would produce, and it isolates the
round loop — the component the ``NCCConfig.engine`` switch changes —
from protocol-side generator overhead, which is identical for both
engines.

Workloads are the two message-heaviest benchmark families:
``bench_thm03_sorting`` (distributed mergesort) and
``bench_thm05_collection`` (BBST build + global token collection), at
their benchmark scales.  Engines alternate rep by rep (so machine noise
hits both), each rep runs with GC paused, and the best rep per engine is
reported.  The replayed metrics are asserted bit-identical between
engines on every run — throughput numbers are only comparable because
the work is provably the same.
"""

from __future__ import annotations

import gc
import random
import time

from common import Experiment, make_net
from repro.ncc.network import RoundPlan
from repro.primitives.bbst import build_bbst
from repro.primitives.collection import global_collect
from repro.primitives.protocol import run_protocol
from repro.primitives.sorting import distributed_sort

#: Replay target: the fast engine should deliver at least this multiple
#: of the reference engine's messages/sec (the PR's tentpole goal).
TARGET_SPEEDUP = 3.0
#: Shape gate for EXPERIMENTS.md: robust to noisy shared machines.
SHAPE_SPEEDUP = 2.0


def _record(n: int, seed: int, proto_factory):
    """Run a protocol once and capture every round's send list."""
    net = make_net(n, seed=seed)
    plans = []
    original_deliver = net.deliver

    def recording_deliver(plan):
        plans.append(list(plan._sends))
        return original_deliver(plan)

    net.deliver = recording_deliver
    run_protocol(net, proto_factory(net))
    return plans


def _sorting_proto(n: int, seed: int):
    def factory(net):
        rng = random.Random(seed * 1000 + n)
        table = {v: rng.randrange(n) for v in net.node_ids}
        return distributed_sort(net, lambda v: table[v])

    return factory


def _collection_proto(n: int, k: int, seed: int):
    def factory(net):
        ids = list(net.node_ids)
        step = max(1, (n - 1) // max(1, k))
        holders = {ids[(i * step) % n]: ((ids[i % n],), (i,)) for i in range(k)}
        i = 0
        while len(holders) < k:
            holders[ids[i]] = ((ids[i],), (1000 + i,))
            i += 1

        def proto():
            ns, root = yield from build_bbst(net)
            yield from global_collect(
                net, ns, list(net.node_ids), root, leader=root, holders=holders
            )

        return proto()

    return factory


def _replay_once(n: int, seed: int, plans, engine: str):
    """One timed replay of the stream; returns (seconds, messages, stats).

    CPU time, not wall clock: the replay is single-threaded and
    CPU-bound, so process time measures the engine without charging it
    for scheduler steal on shared machines.
    """
    net = make_net(n, seed=seed, engine=engine)
    deliver = net.engine.deliver
    shell = RoundPlan()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.process_time()
        for sends in plans:
            shell._sends = sends
            deliver(shell)
        elapsed = time.process_time() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, net.messages_delivered, net.stats()


def measure(label: str, n: int, seed: int, proto_factory, reps: int = 9):
    """Interleaved best-of-``reps`` replay of one workload on both engines.

    Returns a result dict; raises AssertionError if the engines' metrics
    are not bit-identical.
    """
    plans = _record(n, seed, proto_factory)
    best = {"fast": float("inf"), "reference": float("inf")}
    messages = stats = None
    for _ in range(reps):
        for engine in ("fast", "reference"):
            elapsed, msgs, run_stats = _replay_once(n, seed, plans, engine)
            best[engine] = min(best[engine], elapsed)
            if stats is None:
                messages, stats = msgs, run_stats
            else:
                assert run_stats == stats, (
                    f"{label}: {engine} metrics diverge from first replay"
                )
    fast_mps = messages / best["fast"]
    ref_mps = messages / best["reference"]
    return {
        "workload": label,
        "n": n,
        "rounds": len(plans),
        "messages": messages,
        "fast_msgs_per_sec": round(fast_mps),
        "reference_msgs_per_sec": round(ref_mps),
        "speedup": round(fast_mps / ref_mps, 2),
        "target_speedup": TARGET_SPEEDUP,
    }


_results_cache = {}


def bench_results(reps: int = 9):
    """All workload measurements (the BENCH_engine.json payload).

    Cached per ``reps`` so one driver run measures once and reports the
    same numbers in EXPERIMENTS.md and BENCH_engine.json.
    """
    if reps in _results_cache:
        return _results_cache[reps]
    cases = [
        ("thm03_sorting", 256, 7, _sorting_proto(256, 7)),
        ("thm03_sorting", 512, 5, _sorting_proto(512, 5)),
        ("thm05_collection", 256, 11, _collection_proto(256, 64, 11)),
        ("thm05_collection", 512, 11, _collection_proto(512, 128, 11)),
    ]
    _results_cache[reps] = [
        measure(label, n, seed, factory, reps=reps)
        for label, n, seed, factory in cases
    ]
    return _results_cache[reps]


def experiment() -> Experiment:
    rows = []
    speedups = []
    for result in bench_results():
        speedups.append(result["speedup"])
        rows.append(
            [
                result["workload"],
                result["n"],
                result["messages"],
                f"{result['fast_msgs_per_sec']:,}",
                f"{result['reference_msgs_per_sec']:,}",
                f"{result['speedup']:.2f}x",
            ]
        )
    shape = all(s >= SHAPE_SPEEDUP for s in speedups)
    hit_target = sum(1 for s in speedups if s >= TARGET_SPEEDUP)
    return Experiment(
        exp_id="X-ENG",
        claim="fast engine multiplies reference round-loop throughput",
        headers=["workload", "n", "messages", "fast msg/s", "ref msg/s", "speedup"],
        rows=rows,
        shape_holds=shape,
        notes=(
            f"Replay of recorded round streams, interleaved best-of reps, GC "
            f"paused; metrics bit-identical across engines by assertion.  "
            f"Target {TARGET_SPEEDUP:.0f}x met on {hit_target}/{len(speedups)} "
            f"cases this run (shared-machine noise moves individual runs by "
            f"~10%); the shape gate is {SHAPE_SPEEDUP:.0f}x."
        ),
    )


def test_engine_throughput(benchmark):
    """Smoke-scale replay: fast beats reference and metrics match."""
    plans = _record(128, 7, _sorting_proto(128, 7))

    def run():
        return _replay_once(128, 7, plans, "fast")

    elapsed_fast, messages, stats_fast = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    elapsed_ref, _, stats_ref = min(
        (_replay_once(128, 7, plans, "reference") for _ in range(3)),
        key=lambda r: r[0],
    )
    assert stats_fast == stats_ref
    assert messages > 0
    # Loose gate for CI boxes; the full experiment reports exact numbers.
    assert elapsed_fast < elapsed_ref
