"""T-13: upper-envelope realization of non-graphic sequences.

Guarantees: d'_i >= d_i for every i and Σd' <= 2Σd (discrepancy <= Σd).
"""

from common import Experiment, make_net
from repro.core.envelope import (
    envelope_discrepancy,
    envelope_holds,
    realize_envelope,
)
from repro.sequential import is_graphic
from repro.workloads import (
    near_graphic_perturbation,
    random_graphic_sequence,
    regular_sequence,
)


def measure(seq, seed: int = 20):
    net = make_net(len(seq), seed=seed)
    demands = dict(zip(net.node_ids, seq))
    result = realize_envelope(net, demands, sort_fidelity="charged")
    holds = envelope_holds(demands, result)
    disc = envelope_discrepancy(demands, result)
    return result, holds, disc


def experiment() -> Experiment:
    rows = []
    ok = True
    cases = [
        ("hand: (5,5,0,0,0,0)", [5, 5, 0, 0, 0, 0]),
        ("hand: odd sum", [3, 3, 3, 3, 3]),
        ("hand: EG-failing", [4, 4, 4, 4, 0]),
    ]
    for seed in range(3):
        base = random_graphic_sequence(24, 0.3, seed=seed)
        seq = near_graphic_perturbation(base, bumps=6, seed=seed)
        cases.append((f"perturbed random #{seed}", seq))
    cases.append(("graphic control", regular_sequence(16, 4)))

    for label, seq in cases:
        result, holds, disc = measure(seq, seed=len(seq))
        ok &= holds
        demand_sum = sum(min(d, len(seq) - 1) for d in seq)
        graphic = is_graphic(seq)
        if graphic:
            ok &= disc == 0
        ok &= disc <= demand_sum
        factor = sum(result.realized_degrees.values()) / max(1, demand_sum)
        rows.append([label, graphic, demand_sum, disc, f"{factor:.2f}",
                     holds and disc <= demand_sum])
    return Experiment(
        exp_id="T-13",
        claim="envelope realization: d' >= d pointwise, Σd' <= 2Σd",
        headers=["workload", "graphic?", "Σd", "discrepancy ε",
                 "Σd'/Σd", "guarantees hold"],
        rows=rows,
        shape_holds=ok,
        notes="Graphic inputs realize exactly (ε = 0); non-graphic inputs "
        "stay within the 2x envelope, usually far below it.",
    )


def test_thm13_envelope(benchmark):
    def run():
        seq = near_graphic_perturbation(
            random_graphic_sequence(32, 0.3, seed=9), bumps=8, seed=9
        )
        return measure(seq, seed=21)[2]

    benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiment()
    assert exp.shape_holds, exp.render()
